"""Event-driven multi-tenant scheduler over the simulated cluster.

The scheduler turns a stream of :class:`~repro.serve.job.Job` s into a
deterministic simulated-time schedule:

* **admission** — on arrival a job is either shed (optional queue-depth
  bound: a full queue rejects newcomers instead of growing without bound),
  rejected by memory admission control *before* any preprocessing is spent
  (a job whose resident dense operands cannot fit next to two minimal
  streamed chunk buffers on any device — see
  :meth:`~repro.serve.placement.Placer.admit`), or preprocessed: its F-COO
  encoding (and, with ``autotune``, its tuned launch parameters) come from
  the shared :class:`~repro.serve.cache.PreprocCache`.  Preprocessing is
  host work done tenant-side and overlaps freely across jobs; a cache miss
  delays only that job's stage-readiness, never the cluster.

* **queueing** — admitted jobs wait in a priority queue
  (``policy="priority"``: lower priority class first, FIFO within a class;
  ``policy="fifo"``: strict arrival order).

* **dispatch** — a job is dispatched when a copy engine frees *and* the job
  is stage-ready, so its staging overlaps the predecessor's compute.
  Arrivals earlier than the dispatch instant always enter the queue first,
  so a late high-priority job overtakes queued batch work; a job still
  preprocessing never blocks stage-ready ones.

* **batching** — compatible stage-ready jobs (same tensor content,
  operation, mode and rank — i.e. the same F-COO encoding and launch
  geometry) ride one dispatch: the encoding is staged once for the whole
  batch and the members execute back to back on the batch's device.
  Batching changes *when* work runs, never *what* it computes.

All time bookkeeping lives on one shared
:class:`~repro.gpusim.timeline.Timeline`: every device contributes a copy
engine and a compute engine resource (the PR 1 stream-pipeline pair, now
first-class), and a sharded job's partial-output collective books the
execution cluster's intra-node link / per-node NIC resources through
:meth:`~repro.gpusim.cluster.ClusterSpec.book_collective`.  On idle
resources the booked schedule reproduces the pre-refactor closed forms bit
for bit; when concurrent cross-node jobs share a NIC, the later collective
queues behind the earlier one and the job finishes later — shared-NIC
congestion, falling out of the resource model instead of being priced as
idle.  The timeline also powers the per-resource utilisation of
:class:`~repro.serve.engine.ServingReport` and the ``--trace`` Chrome
trace export.

Everything is simulated time derived from the deterministic cost models —
two runs of the same workload produce identical schedules, which is what
lets ``tests/test_serving.py`` assert bit-identical outputs and the CI
regression gate track throughput/latency without timer noise.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.cluster import (
    ClusterLike,
    MultiNodeClusterSpec,
    NodeFailure,
    collapse_cluster,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.timeline import (
    Resource,
    Timeline,
    device_compute_key,
    device_copy_key,
)
from repro.gpusim.timing import OutOfDeviceMemory
from repro.serve.cache import PreprocCache
from repro.serve.execute import ExecutionOutcome, execute_job
from repro.serve.job import Job, JobKind, JobResult, JobStatus
from repro.serve.placement import JobGeometry, Placement, Placer, job_geometry

__all__ = ["DeviceTimeline", "ScheduleOutcome", "Scheduler"]


@dataclass
class DeviceTimeline:
    """Per-device serving summary — a *view* over the shared timeline.

    .. deprecated::
        The scheduler no longer accumulates per-device horizons here; the
        shared :class:`~repro.gpusim.timeline.Timeline` (see
        :attr:`ScheduleOutcome.timeline`) is the source of truth, and one
        :class:`DeviceTimeline` per device is derived from it after the
        run for backward compatibility.  ``copy_free_s`` /
        ``compute_free_s`` are the final horizons of the device's copy and
        compute engine resources, and ``busy_s`` is the compute engine's
        accumulated busy time (the sum of its busy-marked bookings — what
        the utilisation report divides by the makespan).
    """

    slot: int
    device: DeviceSpec
    copy_free_s: float = 0.0
    compute_free_s: float = 0.0
    busy_s: float = 0.0
    jobs: int = 0


@dataclass(eq=False)
class _ReadyEntry:
    """One admitted, preprocessed job waiting in the queue."""

    job: Job
    geometry: JobGeometry
    encoding: Optional[FCOOTensor]
    ready_s: float  # earliest staging start: preprocessing done AND the
    #                 encodings it reuses finished building
    preproc_s: float
    encode_hit: bool
    tuner_hit: Optional[bool]
    launch: Optional[Tuple[int, int]]  # tuned (BLOCK_SIZE, threadlen)


@dataclass
class _RunState:
    """The shared timeline of one scheduler run plus its device resources."""

    timeline: Timeline
    copy: List[Resource]
    compute: List[Resource]
    jobs: List[int]
    #: Flat slots / node indices currently down (chaos); new placements
    #: exclude them until the node's recovery event (if any) fires.
    failed_slots: set = field(default_factory=set)
    failed_nodes: set = field(default_factory=set)


@dataclass
class ScheduleOutcome:
    """Everything one scheduler run produced."""

    results: List[JobResult]
    timelines: List[DeviceTimeline]
    #: The shared simulated-time timeline of the run: per-device copy and
    #: compute engines plus the link/NIC resources the sharded jobs'
    #: collectives booked.  Export with ``timeline.write_chrome_trace``.
    timeline: Optional[Timeline] = field(default=None, repr=False)
    #: Chaos events that fired during the run, in firing order.
    failures: List[NodeFailure] = field(default_factory=list)
    #: Total job re-queues: every time a node loss tore an in-flight job
    #: off its placement and sent it back to the queue.
    requeued_jobs: int = 0

    @property
    def makespan_s(self) -> float:
        """Completion time of the last job (0 for an all-rejected run)."""
        return max((r.finish_s for r in self.results if r.completed), default=0.0)


class Scheduler:
    """Deterministic simulated-time scheduler for one serving cluster.

    Parameters
    ----------
    cluster:
        The serving cluster.
    cache:
        Shared preprocessing cache (encodings + tuned launch configs).
    policy:
        ``"priority"`` (default) or ``"fifo"``.
    max_batch:
        Largest batch of compatible jobs per dispatch (1 disables batching).
    max_queue_depth:
        Queue bound for admission-time load shedding (``None``: unbounded).
    block_size / threadlen:
        Default launch parameters (overridden per job by the tuner cache
        when ``autotune`` is on).
    autotune:
        Look up tuned ``(BLOCK_SIZE, threadlen)`` per kernel-job shape in
        the cache (sweeping on a miss, reusing on a hit); tuning runs on
        the cluster's most capable device.
    num_streams:
        Stream count for the kernels' out-of-core fallback.
    """

    def __init__(
        self,
        cluster: ClusterLike,
        cache: Optional[PreprocCache] = None,
        *,
        policy: str = "priority",
        max_batch: int = 4,
        max_queue_depth: Optional[int] = None,
        block_size: int = 128,
        threadlen: int = 8,
        autotune: bool = False,
        num_streams: int = 2,
    ) -> None:
        if policy not in ("priority", "fifo"):
            raise ValueError(f"policy must be 'priority' or 'fifo', got {policy!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be at least 1, got {max_queue_depth}"
            )
        # Collapse a one-node multi-node spec (mirroring the placer), so
        # timelines, placements and reports speak the same cluster.
        self.cluster = cluster = collapse_cluster(cluster)
        self.cache = cache if cache is not None else PreprocCache()
        self.policy = policy
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.autotune = autotune
        self.num_streams = num_streams
        self.placer = Placer(
            cluster,
            block_size=block_size,
            threadlen=threadlen,
            num_streams=num_streams,
        )
        weights = cluster.capability_weights()
        #: Where tuner sweeps run: the most capable member (ties: lowest slot).
        self._tuner_device = cluster.devices[
            max(range(cluster.num_devices), key=lambda s: (weights[s], -s))
        ]

    # ------------------------------------------------------------------ #
    def _queue_key(self, job: Job) -> Tuple:
        if self.policy == "priority":
            return (job.priority, job.arrival_s, job.job_id)
        return (job.arrival_s, job.job_id)

    def _preprocess(
        self,
        job: Job,
        geometry: JobGeometry,
        availability: Dict[Tuple, float],
    ) -> _ReadyEntry:
        """Run one admitted job's host preprocessing through the cache.

        ``availability`` maps a cache entry's key (encoding or tuner
        config) to the simulated time its build completes: a cache *hit*
        is free but cannot make the job stage-ready before the entry it
        reuses physically exists, so a job arriving just behind the miss
        that builds it waits for that build, not zero.
        """
        encoding = None
        launch = None
        tuner_hit: Optional[bool] = None
        ready_s = job.arrival_s
        if job.kind.is_kernel:
            key = (job.tensor.content_key, job.operation.value, job.mode)
            encoding, encode_hit, preproc_s = self.cache.encoding(
                job.tensor, job.operation, job.mode
            )
            if encode_hit:
                ready_s = max(ready_s, availability.get(key, job.arrival_s))
            else:
                availability[key] = job.arrival_s + preproc_s
                ready_s = availability[key]
            if self.autotune:
                launch, tuner_hit, tune_s = self.cache.tuner_config(
                    job.tensor,
                    job.operation,
                    job.mode,
                    job.rank,
                    device=self._tuner_device,
                )
                preproc_s += tune_s
                tuner_key = (
                    "tuner",
                    job.tensor.content_key,
                    job.operation.value,
                    job.mode,
                    job.rank,
                )
                if tuner_hit:
                    ready_s = max(ready_s, availability.get(tuner_key, job.arrival_s))
                else:
                    # The sweep runs after this job's encode lands.
                    ready_s += tune_s
                    availability[tuner_key] = ready_s
        else:
            # Prime the cache for every mode the decomposition will sweep,
            # so the driver's per-mode lookups hit; the misses are this
            # job's preprocessing bill.
            encode_hit, preproc_s = True, 0.0
            for mode in range(job.tensor.order):
                key = (job.tensor.content_key, job.operation.value, mode)
                _, hit, cost_s = self.cache.encoding(job.tensor, job.operation, mode)
                encode_hit = encode_hit and hit
                preproc_s += cost_s
                if hit:
                    ready_s = max(ready_s, availability.get(key, job.arrival_s))
                else:
                    availability[key] = job.arrival_s + preproc_s
                    ready_s = max(ready_s, availability[key])
        return _ReadyEntry(
            job=job,
            geometry=geometry,
            encoding=encoding,
            ready_s=ready_s,
            preproc_s=preproc_s,
            encode_hit=encode_hit,
            tuner_hit=tuner_hit,
            launch=launch,
        )

    def _admit(
        self,
        pending: deque,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        clock: float,
        results: Dict[int, JobResult],
        availability: Dict[Tuple, float],
    ) -> None:
        """Process arrivals up to ``clock``: shed, reject or preprocess."""
        while pending and pending[0].arrival_s <= clock:
            job = pending.popleft()
            if self.max_queue_depth is not None and len(ready) >= self.max_queue_depth:
                results[job.job_id] = self._rejected(
                    job,
                    f"queue full ({self.max_queue_depth} jobs waiting) at arrival",
                )
                continue
            geometry = job_geometry(job, threadlen=self.placer.threadlen)
            reason = self.placer.admit(job, geometry)
            if reason is not None:
                results[job.job_id] = self._rejected(job, reason)
                continue
            ready.append(
                (self._queue_key(job), self._preprocess(job, geometry, availability))
            )

    @staticmethod
    def _rejected(job: Job, reason: str) -> JobResult:
        return JobResult(
            job=job,
            status=JobStatus.REJECTED,
            reject_reason=reason,
            stage_start_s=job.arrival_s,
            exec_start_s=job.arrival_s,
            finish_s=job.arrival_s,
        )

    def _pop_best_ready(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], t: float
    ) -> Optional[_ReadyEntry]:
        """Pop the best queued job that is stage-ready at ``t`` (work
        conservation: a job still preprocessing never blocks ready ones)."""
        candidates = [entry for entry in ready if entry[1].ready_s <= t]
        if not candidates:
            return None
        best = min(candidates, key=lambda entry: entry[0])[1]
        ready[:] = [e for e in ready if e[1].job.job_id != best.job.job_id]
        return best

    def _pop_batch_mates(
        self, ready: List[Tuple[Tuple, _ReadyEntry]], leader: Job, t: float
    ) -> List[_ReadyEntry]:
        """Extract up to ``max_batch - 1`` stage-ready jobs batchable with
        ``leader``."""
        if self.max_batch <= 1 or not leader.kind.is_kernel:
            return []
        matching = sorted(
            (
                entry
                for entry in ready
                # The mate must itself be a kernel job: a decomposition on
                # the same tensor shares the leader's batch_key (CP-ALS
                # preprocesses the SpMTTKRP encoding) but is not one kernel
                # invocation and must keep its own placement.
                if entry[1].job.kind.is_kernel
                and entry[1].job.batch_key == leader.batch_key
                and entry[1].ready_s <= t
            ),
            key=lambda entry: entry[0],
        )
        take = matching[: self.max_batch - 1]
        if take:
            taken = {entry[1].job.job_id for entry in take}
            ready[:] = [entry for entry in ready if entry[1].job.job_id not in taken]
        return [entry[1] for entry in take]

    # ------------------------------------------------------------------ #
    def _node_slots(self, node_index: int) -> Tuple[int, ...]:
        """Flat serving-cluster slots a chaos event on ``node_index`` kills.

        On a multi-node cluster the event takes out a whole node; on a
        flat cluster the "node" index is read as a single device slot.
        Out-of-range indices map to no slots — the event is inapplicable
        and ignored, mirroring the decomposition drivers.
        """
        cluster = self.cluster
        if isinstance(cluster, MultiNodeClusterSpec):
            if 0 <= node_index < cluster.num_nodes:
                return cluster.node_slots(node_index)
            return ()
        if 0 <= node_index < cluster.num_devices:
            return (node_index,)
        return ()

    def run(
        self,
        jobs: Sequence[Job],
        chaos: Optional[Sequence[NodeFailure]] = None,
    ) -> ScheduleOutcome:
        """Schedule and execute ``jobs``; returns the full ledger.

        ``chaos`` injects seeded node-loss events
        (:class:`~repro.gpusim.cluster.NodeFailure`, e.g. from
        :func:`~repro.serve.workload.generate_chaos`).  When an event
        fires, the node's slots stop accepting new placements, and every
        job whose committed run overlaps the failure instant on a dead
        slot (``finish_s > time_s``) is torn down: its result is dropped,
        its bookings stay on the timeline as wasted work, and the job is
        re-queued (re-preprocessing hits the warm cache) to be re-admitted
        on surviving slots.  An event's ``recover_s`` returns the node's
        slots to the placement pool at that time.  Numeric outputs are
        unaffected — a re-queued job recomputes the same bits on the
        survivor placement — so chaos perturbs only the schedule.
        """
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("job ids must be unique within one scheduler run")
        timeline = Timeline()
        state = _RunState(
            timeline=timeline,
            copy=[
                timeline.resource(device_copy_key(i), category="copy")
                for i in range(self.cluster.num_devices)
            ],
            compute=[
                timeline.resource(device_compute_key(i), category="compute")
                for i in range(self.cluster.num_devices)
            ],
            jobs=[0] * self.cluster.num_devices,
        )
        pending = deque(sorted(jobs, key=lambda j: (j.arrival_s, j.job_id)))
        ready: List[Tuple[Tuple, _ReadyEntry]] = []
        results: Dict[int, JobResult] = {}
        #: encoding key -> simulated time its host build completes, for
        #: this run only (a fresh run restarts the simulated clock).
        availability: Dict[Tuple, float] = {}
        clock = timeline.clock
        batch_seq = 0
        chaos_events = deque(sorted(chaos or (), key=lambda e: (e.time_s, e.node_index)))
        #: (recover_s, node_index, slots) for nodes that will come back.
        pending_recovery: List[Tuple[float, int, Tuple[int, ...]]] = []
        requeue_counts: Dict[int, int] = {}
        fired: List[NodeFailure] = []

        def fire_due(now: float) -> None:
            """Apply every chaos/recovery event due at ``now``.

            Recoveries apply first so a node failing and recovering at the
            same instant nets out failed (the failure is the later event).
            A failure tears down every committed job overlapping it on a
            dead slot and re-queues it; the victim's bookings stay on the
            timeline as wasted work.
            """
            pending_recovery.sort()
            while pending_recovery and pending_recovery[0][0] <= now:
                _, node, slots = pending_recovery.pop(0)
                state.failed_nodes.discard(node)
                state.failed_slots.difference_update(slots)
            while chaos_events and chaos_events[0].time_s <= now:
                event = chaos_events.popleft()
                slots = self._node_slots(event.node_index)
                if not slots:
                    continue  # inapplicable event (node index out of range)
                fired.append(event)
                state.failed_nodes.add(event.node_index)
                state.failed_slots.update(slots)
                if event.recover_s is not None:
                    pending_recovery.append((event.recover_s, event.node_index, slots))
                dead = set(slots)
                victims = [
                    r
                    for r in results.values()
                    if r.status is JobStatus.COMPLETED
                    and r.finish_s > event.time_s
                    and dead & set(r.device_slots)
                ]
                for victim in victims:
                    job = victim.job
                    requeue_counts[job.job_id] = requeue_counts.get(job.job_id, 0) + 1
                    del results[job.job_id]
                    geometry = job_geometry(job, threadlen=self.placer.threadlen)
                    entry = self._preprocess(job, geometry, availability)
                    # Re-admission cannot predate the failure that caused it.
                    entry.ready_s = max(entry.ready_s, event.time_s)
                    ready.append((self._queue_key(job), entry))

        while pending or ready or chaos_events:
            fire_due(clock.now_s)
            self._admit(pending, ready, clock.now_s, results, availability)
            upcoming = [
                t
                for t in (
                    pending[0].arrival_s if pending else None,
                    chaos_events[0].time_s if chaos_events else None,
                    min(pending_recovery)[0] if pending_recovery else None,
                )
                if t is not None
            ]
            if not ready:
                if not upcoming:
                    break
                clock.advance_to(max(clock.now_s, min(upcoming)))
                continue
            # The next staging can begin when some copy engine frees...
            t = max(clock.now_s, min(lane.free_s for lane in state.copy))
            # ...but arrivals and chaos/recovery events before that instant
            # reshape the queue (or the placement pool) first.
            blocker = min(upcoming, default=math.inf)
            if blocker <= t:
                clock.advance_to(max(clock.now_s, blocker))
                continue
            entry = self._pop_best_ready(ready, t)
            if entry is None:
                # Everyone queued is still preprocessing; advance to the
                # earliest readiness (or the next arrival/event).
                next_ready = min(e[1].ready_s for e in ready)
                clock.advance_to(min(next_ready, blocker))
                continue
            clock.advance_to(t)
            batch_seq = self._dispatch(entry, t, ready, results, state, batch_seq)

        ordered = [
            replace(results[job_id], requeues=requeue_counts[job_id])
            if job_id in requeue_counts
            else results[job_id]
            for job_id in sorted(results)
        ]
        timelines = [
            DeviceTimeline(
                slot=i,
                device=d,
                copy_free_s=state.copy[i].free_s,
                compute_free_s=state.compute[i].free_s,
                busy_s=state.compute[i].busy_s,
                jobs=state.jobs[i],
            )
            for i, d in enumerate(self.cluster.devices)
        ]
        return ScheduleOutcome(
            results=ordered,
            timelines=timelines,
            timeline=timeline,
            failures=fired,
            requeued_jobs=sum(requeue_counts.values()),
        )

    # ------------------------------------------------------------------ #
    def _dispatch(
        self,
        entry: _ReadyEntry,
        t0: float,
        ready: List[Tuple[Tuple, _ReadyEntry]],
        results: Dict[int, JobResult],
        state: _RunState,
        batch_seq: int,
    ) -> int:
        job = entry.job
        geometry = entry.geometry
        placement = self.placer.place(
            job,
            geometry,
            [lane.free_s for lane in state.compute],
            t0,
            excluded_nodes=frozenset(state.failed_nodes),
            excluded_slots=frozenset(state.failed_slots),
        )
        if entry.launch is not None:
            placement = replace(
                placement, block_size=entry.launch[0], threadlen=entry.launch[1]
            )

        mates = [] if placement.sharded else self._pop_batch_mates(ready, job, t0)
        batch_id: Optional[int] = None
        if mates:
            batch_id = batch_seq
            batch_seq += 1

        try:
            outcome = execute_job(
                job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
            )
        except OutOfDeviceMemory as exc:
            # The admission estimate is first-order (autotune can raise the
            # threadlen after sizing, and geometry is host arithmetic); a
            # kernel-level capacity failure rejects this one job instead of
            # aborting the whole serving run.
            results[job.job_id] = self._rejected(
                job, f"rejected at execution: {exc}"
            )
            for mate in mates:
                ready.append((self._queue_key(mate.job), mate))
            return batch_seq
        results[job.job_id] = self._commit(
            entry,
            t0,
            placement,
            geometry,
            outcome,
            state,
            batch_id=batch_id,
            batch_leader=bool(mates),
            encoding_staged=True,
        )

        for mate in mates:
            # The batch shares the leader's encoding (already staged) and
            # device; only the mate's dense operands still move.
            mate_outcome = execute_job(
                mate.job,
                placement,
                encoding=entry.encoding,
                cache=self.cache,
                num_streams=self.num_streams,
            )
            results[mate.job.job_id] = self._commit(
                mate,
                t0,
                placement,
                geometry,
                mate_outcome,
                state,
                batch_id=batch_id,
                batch_leader=False,
                encoding_staged=False,
            )
        return batch_seq

    # ------------------------------------------------------------------ #
    def _staging_seconds(
        self,
        job: Job,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        *,
        encoding_staged: bool,
    ) -> float:
        """Host-to-device staging time of one dispatched job.

        Resident jobs ship the F-COO arrays once plus the dense factor
        matrices (the output is produced on the device — it occupies
        memory there but never crosses PCIe, matching the CP engine's
        transfer accounting); a job that fell back to the streamed path
        re-ships its chunks inside the kernel (charged there), so only the
        factors stage here; batch mates reuse the leader's staged
        encoding.  CP jobs charge their transfer inside the engine setup
        (already part of ``exec_s``); Tucker has no setup accounting, so
        its worst-mode staging is charged here.
        """
        if outcome.execution == "decomposition":
            if job.kind is JobKind.TUCKER:
                return (
                    geometry.fcoo_bytes + geometry.factor_bytes
                ) / placement.primary_device.pcie_bandwidth_bytes_per_s
            return 0.0
        if placement.sharded:
            execution = getattr(outcome.profile, "sharded", None)
            if execution is None:
                return 0.0
            # Every device stages its own shard (plus its replica of the
            # dense factors) over its own host link, concurrently.  The
            # ledgers index the *execution* cluster — one node of the
            # serving cluster for a node-local shard.
            devices = placement.cluster.devices
            return max(
                (
                    (ledger.staged_bytes + geometry.factor_bytes)
                    / devices[ledger.index].pcie_bandwidth_bytes_per_s
                    for ledger in execution.shards
                ),
                default=0.0,
            )
        device = placement.device
        fcoo_bytes = geometry.fcoo_bytes if encoding_staged else 0.0
        if outcome.execution == "streamed":
            fcoo_bytes = 0.0
        return (fcoo_bytes + geometry.factor_bytes) / device.pcie_bandwidth_bytes_per_s

    def _commit(
        self,
        entry: _ReadyEntry,
        t0: float,
        placement: Placement,
        geometry: JobGeometry,
        outcome: ExecutionOutcome,
        state: _RunState,
        *,
        batch_id: Optional[int],
        batch_leader: bool,
        encoding_staged: bool,
    ) -> JobResult:
        """Book one executed job onto the shared timeline.

        Staging gang-books the placement's copy engines, execution books
        each device's compute engine for its actual busy seconds, and a
        sharded job's partial-output collective books the execution
        cluster's link/NIC resources after the slowest shard.  On idle
        resources the resolved times equal the pre-refactor closed forms
        bit for bit (``finish == exec_start + exec_s``); a collective that
        queues behind another job's on a shared NIC pushes the finish
        later — never earlier.  Every participating compute engine is held
        (a non-busy reservation) until the job completes, since the
        devices take part in the collective.
        """
        job = entry.job
        tag = f"job{job.job_id}"
        stage_s = self._staging_seconds(
            job, placement, geometry, outcome, encoding_staged=encoding_staged
        )
        slots = placement.device_slots
        copy_lanes = [state.copy[s] for s in slots]
        compute_lanes = [state.compute[s] for s in slots]

        stage = state.timeline.book_together(
            copy_lanes, stage_s, ready_s=max(t0, entry.ready_s), label=f"stage:{tag}"
        )
        stage_start, stage_end = stage.start_s, stage.end_s

        execution = getattr(outcome.profile, "sharded", None) if placement.sharded else None
        busy_by_slot: Dict[int, float]
        if placement.sharded:
            # The execution ledgers index the placement's cluster (a node
            # of the serving cluster for a node-local shard); translate the
            # local device indices to the serving cluster's flat slots.
            if execution is not None:
                busy_by_slot = {
                    slots[local]: busy
                    for local, busy in execution.device_times.items()
                }
            else:
                per_device = getattr(outcome.output, "device_time_by_device", None)
                busy_by_slot = (
                    {slots[local]: busy for local, busy in per_device.items()}
                    if per_device
                    else {s: outcome.exec_s for s in slots}
                )
        else:
            busy_by_slot = {slots[0]: outcome.exec_s}

        exec_start = stage_end
        for lane in compute_lanes:
            exec_start = max(exec_start, lane.free_s)
        for lane, slot in zip(compute_lanes, slots):
            busy = busy_by_slot.get(slot, 0.0)
            if busy > 0.0:
                lane.book(busy, ready_s=exec_start, label=f"exec:{tag}")

        # The idle-resource closed form; link/NIC contention can only delay it.
        finish = exec_start + outcome.exec_s
        if placement.sharded:
            if execution is not None:
                reduction_s = execution.reduction_time_s
                compute_span = execution.max_shard_time_s
                reduction_kind = execution.reduction_kind
            else:
                # A sharded decomposition: its per-mode collectives live on
                # the driver's own timeline (CPResult/TuckerResult carry
                # it); book their aggregate on the serving cluster's
                # link/NIC resources so decomposition jobs contend for a
                # shared NIC exactly like kernel jobs do.  One tail
                # booking is the job-level granularity the scheduler
                # prices everything else at.
                result_timeline = getattr(outcome.output, "timeline", None)
                reduction_s = (
                    sum(
                        e.duration_s
                        for e in result_timeline.events
                        if e.busy and e.category in ("link", "nic")
                    )
                    if result_timeline is not None
                    else 0.0
                )
                compute_span = outcome.exec_s - reduction_s
                reduction_kind = "collectives"
        else:
            reduction_s = 0.0
            compute_span = outcome.exec_s
        if reduction_s > 0.0 and placement.cluster is not None:
            compute_end = exec_start + compute_span
            resources = placement.cluster.collective_resources(state.timeline)
            red_start = compute_end
            for resource in resources:
                red_start = max(red_start, resource.free_s)
            if red_start > compute_end:
                # The collective queued behind another job's on a shared
                # link/NIC: the whole job completes later.
                finish = red_start + reduction_s
            state.timeline.book_together(
                resources,
                finish - red_start,
                ready_s=red_start,
                label=f"{reduction_kind}:{tag}",
            )
        # Hold every participating compute engine to the job's completion
        # (the devices take part in the collective; nothing else may slot in).
        for lane in compute_lanes:
            if finish > lane.free_s:
                lane.book(
                    finish - lane.free_s,
                    ready_s=lane.free_s,
                    label=f"barrier:{tag}",
                    busy=False,
                )
        for slot in slots:
            state.jobs[slot] += 1

        return JobResult(
            job=job,
            status=JobStatus.COMPLETED,
            output=outcome.output,
            device_slots=slots,
            execution=outcome.execution,
            encode_cache_hit=entry.encode_hit,
            tuner_cache_hit=entry.tuner_hit,
            batch_id=batch_id,
            batch_leader=batch_leader,
            preproc_s=entry.preproc_s,
            stage_s=stage_s,
            exec_s=outcome.exec_s,
            stage_start_s=stage_start,
            exec_start_s=exec_start,
            finish_s=finish,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            placement=placement,
        )
