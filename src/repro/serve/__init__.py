"""Multi-tenant serving over the simulated cluster.

The unified F-COO kernels make one sparse tensor operation fast; this
subsystem makes a *stream* of them a served workload.  It layers, over the
existing kernels, cluster model and decomposition drivers:

* :mod:`~repro.serve.job` — the unit of work: kernel and decomposition
  requests with tenants, priorities and arrival times;
* :mod:`~repro.serve.cache` — the preprocessing cache memoising F-COO
  encodings and tuned launch configs by tensor content, so repeat tenants
  skip preprocessing;
* :mod:`~repro.serve.placement` — admission control against per-device
  memory and capability-aware placement (fast devices preferred, oversize
  jobs sharded across the cluster proportional to modeled throughput);
* :mod:`~repro.serve.scheduler` — the event-driven simulated-time
  scheduler: priority/FIFO queueing, load shedding, batching of compatible
  jobs, all booked onto the shared
  :class:`~repro.gpusim.timeline.Timeline` — per-device copy/compute
  engine resources overlap one job's staging with another's execution
  (the PR 1 stream model, lifted to whole jobs), and sharded jobs'
  collectives book the link/NIC resources, so concurrent cross-node jobs
  contend for a shared NIC instead of pricing it as idle;
* :mod:`~repro.serve.execute` — the pure (job, placement) -> output
  mapping, shared by the scheduler and the bit-identity property harness;
* :mod:`~repro.serve.feedback` — the closed-loop observation store:
  completed jobs' attributed costs fold into decayed per-(kernel, tensor,
  device) execution estimates and per-node congestion scores, consumed by
  the adaptive placer, the tuner re-ranking and the hedged
  :class:`ServingEngine` run (adaptive never loses to static);
* :mod:`~repro.serve.workload` — seeded synthetic multi-tenant workloads,
  the seeded chaos layer (timeline-scheduled node-loss events drawn from
  their own RNG stream) and the default heterogeneous serving node;
* :mod:`~repro.serve.autoscale` — the deterministic device-pool
  autoscaler growing/shrinking the active slot set against offered load;
* :mod:`~repro.serve.engine` — :class:`ServingEngine` tying it together
  and the throughput/latency/utilisation :class:`ServingReport`.

The ``policy="deadline"`` scheduler adds SLO-driven serving: jobs carry an
optional :class:`~repro.context.SLO` (deadline + priority + whether they
may be preempted), earliest-deadline-first queueing, and preemption of
batch jobs at a streamed chunk boundary — the victim's remaining bookings
are released back to the :class:`~repro.gpusim.timeline.Resource` pool and
the job later resumes from its released ledger, bit-identical.

Scheduling, batching, caching and placement only ever move work in
*time* — ``tests/test_serving.py`` proves every scheduled job's output is
bit-identical to executing it alone.
"""

from repro.context import SLO, ExecContext, TimedResult
from repro.serve.autoscale import Autoscaler, AutoscalerSpec, ScaleEvent
from repro.serve.cache import CacheStats, PreprocCache
from repro.serve.engine import (
    ServingEngine,
    ServingReport,
    publish_serving_metrics,
)
from repro.serve.execute import ExecutionOutcome, execute_job
from repro.serve.feedback import ObservationStore
from repro.serve.job import Job, JobKind, JobResult, JobStatus
from repro.serve.placement import JobGeometry, Placement, Placer, job_geometry
from repro.serve.scheduler import (
    DeviceTimeline,
    PreemptionRecord,
    ScheduleOutcome,
    Scheduler,
)
from repro.serve.workload import (
    ChaosSpec,
    WorkloadSpec,
    default_serving_cluster,
    generate_chaos,
    generate_workload,
)

__all__ = [
    "Job",
    "JobKind",
    "JobResult",
    "JobStatus",
    "PreprocCache",
    "CacheStats",
    "Placement",
    "Placer",
    "JobGeometry",
    "job_geometry",
    "Scheduler",
    "ScheduleOutcome",
    "DeviceTimeline",
    "PreemptionRecord",
    "SLO",
    "ExecContext",
    "TimedResult",
    "Autoscaler",
    "AutoscalerSpec",
    "ScaleEvent",
    "ExecutionOutcome",
    "execute_job",
    "ObservationStore",
    "WorkloadSpec",
    "generate_workload",
    "ChaosSpec",
    "generate_chaos",
    "default_serving_cluster",
    "ServingEngine",
    "ServingReport",
    "publish_serving_metrics",
]
