"""Job execution: one placed job -> numeric output + simulated seconds.

This module is deliberately *pure*: given a job and a placement, the
numeric output and the simulated execution time are fully determined — no
scheduler state, no clock, no cache bookkeeping.  The scheduler calls it to
run dispatched jobs, and the property harness in ``tests/test_serving.py``
calls it directly to prove that scheduling, batching and caching never
perturb numerics: replaying a scheduled job's recorded placement through
:func:`execute_job` must reproduce its output bit for bit.

Kernel jobs run the unified kernels (one-shot, with the kernels' own
auto-fallback to the PR 1 streamed path on an over-capacity device, or
sharded across the placement's cluster); decomposition jobs run the full
CP-ALS / Tucker-HOOI drivers with the placement's device or cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.algorithms.cp import UnifiedGPUEngine, cp_als
from repro.algorithms.tucker import tucker_hooi
from repro.context import ExecContext
from repro.formats.fcoo import FCOOTensor
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.serve.job import Job, JobKind
from repro.serve.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["ExecutionOutcome", "execute_job"]


@dataclass
class ExecutionOutcome:
    """What executing one placed job produced.

    Attributes
    ----------
    output:
        The numeric result: the kernel output (dense matrix or semi-sparse
        tensor) for kernel jobs, the full
        :class:`~repro.algorithms.cp.CPResult` /
        :class:`~repro.algorithms.tucker.TuckerResult` for decompositions.
    exec_s:
        Simulated execution seconds (decompositions include their engine
        setup/transfer time).
    execution:
        Path taken: ``"one-shot"``, ``"streamed"``, ``"sharded"`` or
        ``"decomposition"``.
    profile:
        The kernel profile (kernel jobs only; carries the streaming /
        sharded ledgers the scheduler prices staging from).
    """

    output: Any
    exec_s: float
    execution: str
    profile: Any = None


def execute_job(
    job: Job,
    placement: Placement,
    *,
    encoding: Optional[FCOOTensor] = None,
    cache: Optional[object] = None,
    num_streams: int = 2,
    metrics: Optional["MetricsRegistry"] = None,
    nic_policy: str = "fifo",
) -> ExecutionOutcome:
    """Execute one placed job; deterministic in ``(job, placement)``.

    Parameters
    ----------
    job / placement:
        What to run and where (see :class:`~repro.serve.placement.Placer`).
    encoding:
        Pre-built F-COO encoding for kernel jobs (normally supplied by the
        scheduler from its :class:`~repro.serve.cache.PreprocCache`); built
        on the fly when absent.  The encoding never changes numerics — it
        is a function of ``(tensor, operation, mode)`` alone.
    cache:
        Optional preprocessing cache forwarded to the decomposition
        drivers, so their per-mode encodings are shared across jobs.
    num_streams:
        Stream count for the kernels' out-of-core fallback.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` threaded onto
        the :class:`~repro.context.ExecContext`, so the kernels and
        decomposition drivers publish launch/timing telemetry.  Purely
        observational — outputs and modeled seconds are bit-identical with
        or without it (the replay property holds either way).
    nic_policy:
        The serving run's NIC queue discipline, carried on the
        :class:`~repro.context.ExecContext` for downstream consumers.
        Record-only here: the kernels and drivers never reorder their own
        collectives, so outputs and modeled seconds are unchanged.
    """
    ctx = ExecContext(
        num_streams=num_streams,
        cluster=placement.cluster,
        preproc_cache=cache,
        metrics=metrics,
        nic_policy=nic_policy,
    )
    if job.kind.is_kernel:
        if encoding is None:
            encoding = FCOOTensor.from_sparse(job.tensor, job.operation, job.mode)
        factors = job.factors()
        kwargs = dict(
            device=placement.primary_device,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            ctx=ctx,
        )
        if job.kind is JobKind.SPTTM:
            result = unified_spttm(encoding, factors[job.mode], job.mode, **kwargs)
        elif job.kind is JobKind.SPMTTKRP:
            result = unified_spmttkrp(encoding, factors, job.mode, **kwargs)
        else:
            result = unified_spttmc(encoding, factors, job.mode, **kwargs)
        profile = result.profile
        if getattr(profile, "sharded", None) is not None:
            execution = "sharded"
        elif getattr(profile, "streaming", None) is not None:
            execution = "streamed"
        else:
            execution = "one-shot"
        return ExecutionOutcome(
            output=result.output,
            exec_s=result.estimated_time_s,
            execution=execution,
            profile=profile,
        )

    if job.kind is JobKind.CP_ALS:
        engine = UnifiedGPUEngine(
            device=placement.primary_device,
            block_size=placement.block_size,
            threadlen=placement.threadlen,
            ctx=ctx,
        )
        result = cp_als(
            job.tensor,
            job.rank,
            engine=engine,
            max_iterations=job.iterations,
            seed=job.factor_seed,
            compute_fit=False,
        )
        return ExecutionOutcome(
            output=result,
            exec_s=result.setup_time_s + result.total_time_s,
            execution="decomposition",
        )

    result = tucker_hooi(
        job.tensor,
        job.tucker_ranks,
        device=placement.primary_device,
        max_iterations=job.iterations,
        seed=job.factor_seed,
        block_size=placement.block_size,
        threadlen=placement.threadlen,
        ctx=ctx,
    )
    return ExecutionOutcome(
        output=result,
        exec_s=result.total_time_s,
        execution="decomposition",
    )
