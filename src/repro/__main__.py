"""``python -m repro`` — run the reproduction's experiment harness."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
