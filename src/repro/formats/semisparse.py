"""Semi-sparse tensors and the sCOO layout (Li et al., IA^3 2016).

The result of SpTTM is *semi-sparse*: its product mode is dense (every
non-empty fiber of the output carries ``R`` values, one per column of the
factor matrix) while the other modes keep the input's sparsity pattern.  Li
et al. introduced the sCOO format to store exactly this: coordinates are kept
only for the sparse modes (one row per non-empty fiber) and the dense mode is
a contiguous ``(num_fibers, R)`` value block.

In this reproduction ``SemiSparseTensor`` plays two roles:

* it is the output type of every SpTTM kernel (unified and baselines), and
* it is the *intermediate tensor* materialised by the two-step fiber-centric
  SpMTTKRP that the paper criticises in Figure 3(a) — its ``storage_bytes``
  is what Figure 9's memory-consumption comparison charges to ParTI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode, check_shape

__all__ = ["SemiSparseTensor"]


@dataclass(frozen=True)
class SemiSparseTensor:
    """A tensor with one dense mode and sparse remaining modes (sCOO).

    Attributes
    ----------
    shape:
        Logical shape of the semi-sparse tensor.  ``shape[dense_mode]`` is
        the length of the dense fibers (``R`` for an SpTTM output).
    dense_mode:
        The mode whose fibers are dense.
    fiber_coords:
        ``(num_fibers, order - 1)`` coordinates of the non-empty fibers in
        the sparse modes, ordered by ``sparse_modes``.
    fiber_values:
        ``(num_fibers, shape[dense_mode])`` dense values of each fiber.
    """

    shape: Tuple[int, ...]
    dense_mode: int
    fiber_coords: np.ndarray
    fiber_values: np.ndarray

    def __post_init__(self) -> None:
        shape = check_shape(self.shape)
        dense_mode = check_mode(self.dense_mode, len(shape))
        coords = np.asarray(self.fiber_coords, dtype=np.int64)
        values = np.asarray(self.fiber_values, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != len(shape) - 1:
            raise ValueError(
                f"fiber_coords must have shape (num_fibers, {len(shape) - 1}), got {coords.shape}"
            )
        if values.ndim != 2 or values.shape != (coords.shape[0], shape[dense_mode]):
            raise ValueError(
                f"fiber_values must have shape ({coords.shape[0]}, {shape[dense_mode]}), "
                f"got {values.shape}"
            )
        sparse_sizes = [s for m, s in enumerate(shape) if m != dense_mode]
        if coords.shape[0]:
            if (coords < 0).any() or (coords >= np.asarray(sparse_sizes)).any():
                raise ValueError("fiber coordinate out of bounds")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "dense_mode", dense_mode)
        object.__setattr__(self, "fiber_coords", coords)
        object.__setattr__(self, "fiber_values", values)

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Tensor order."""
        return len(self.shape)

    @property
    def sparse_modes(self) -> Tuple[int, ...]:
        """The modes that keep a sparse index (all but ``dense_mode``)."""
        return tuple(m for m in range(self.order) if m != self.dense_mode)

    @property
    def num_fibers(self) -> int:
        """Number of stored (non-empty) dense fibers."""
        return int(self.fiber_coords.shape[0])

    @property
    def fiber_length(self) -> int:
        """Length of each dense fiber (the dense mode's size)."""
        return int(self.shape[self.dense_mode])

    def storage_bytes(self, *, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Bytes needed to store the sCOO representation on the device."""
        coord_bytes = self.num_fibers * (self.order - 1) * index_bytes
        val_bytes = self.num_fibers * self.fiber_length * value_bytes
        return int(coord_bytes + val_bytes)

    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ndarray (guarded against huge shapes)."""
        total = 1.0
        for s in self.shape:
            total *= float(s)
        if total > (1 << 28):
            raise MemoryError(
                f"refusing to densify semi-sparse tensor of shape {self.shape}"
            )
        out = np.zeros(self.shape, dtype=np.float64)
        if self.num_fibers == 0:
            return out
        index: list = [None] * self.order
        for pos, m in enumerate(self.sparse_modes):
            index[m] = self.fiber_coords[:, pos]
        index[self.dense_mode] = slice(None)
        # Build an advanced-indexing tuple that scatters each fiber at once.
        # NumPy keeps the broadcast (fiber) axis in place only when the
        # advanced indices are contiguous; when the dense slice leads
        # (dense_mode == 0) the result is (fiber_length, num_fibers) and the
        # value block must be transposed.
        values = self.fiber_values
        if self.dense_mode == 0 and self.order > 1:
            values = values.T
        out[tuple(index)] = values
        return out

    def to_sparse(self, *, tol: float = 0.0) -> SparseTensor:
        """Convert to coordinate form, dropping entries with ``|v| <= tol``."""
        if self.num_fibers == 0:
            return SparseTensor.empty(self.shape)
        r = self.fiber_length
        nnz = self.num_fibers * r
        indices = np.zeros((nnz, self.order), dtype=np.int64)
        for pos, m in enumerate(self.sparse_modes):
            indices[:, m] = np.repeat(self.fiber_coords[:, pos], r)
        indices[:, self.dense_mode] = np.tile(np.arange(r, dtype=np.int64), self.num_fibers)
        values = self.fiber_values.reshape(-1)
        mask = np.abs(values) > tol
        return SparseTensor(
            indices[mask], values[mask], self.shape, sum_duplicates=False, sort=True
        )

    def allclose(
        self, other: "SemiSparseTensor", *, rtol: float = 1e-8, atol: float = 1e-10
    ) -> bool:
        """Compare two semi-sparse tensors (same dense mode, fibers and values)."""
        if not isinstance(other, SemiSparseTensor):
            raise TypeError("allclose expects another SemiSparseTensor")
        if self.shape != other.shape or self.dense_mode != other.dense_mode:
            return False
        a = self.canonicalized()
        b = other.canonicalized()
        if a.num_fibers != b.num_fibers:
            return False
        if not np.array_equal(a.fiber_coords, b.fiber_coords):
            return False
        return bool(np.allclose(a.fiber_values, b.fiber_values, rtol=rtol, atol=atol))

    def canonicalized(self) -> "SemiSparseTensor":
        """Return a copy with fibers sorted lexicographically by coordinate."""
        if self.num_fibers == 0:
            return self
        perm = np.lexsort(self.fiber_coords.T[::-1])
        return SemiSparseTensor(
            shape=self.shape,
            dense_mode=self.dense_mode,
            fiber_coords=self.fiber_coords[perm],
            fiber_values=self.fiber_values[perm],
        )
