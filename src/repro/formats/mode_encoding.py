"""Unified classification of tensor modes per operation (paper Table I).

The paper's central observation is that SpTTM, SpMTTKRP and SpTTMc share the
same computational skeleton once the tensor modes are classified into

* **product modes** — the modes along which the tensor is multiplied by a
  dense factor matrix; their indices select rows of the factor matrices and
  must be stored explicitly.
* **index modes** — the remaining modes; a change in their values marks the
  start of a new fiber (SpTTM) or slice (SpMTTKRP/SpTTMc) and therefore a
  new reduction segment.  Only the *changes* need to be stored (the F-COO
  bit-flag).

This module owns that classification so that the F-COO encoder and the
unified kernels never hard-code an operation-specific special case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.util.validation import check_mode, check_positive_int

__all__ = ["OperationKind", "ModeRoles", "mode_roles"]


class OperationKind(enum.Enum):
    """Sparse tensor operations covered by the unified approach (Table I)."""

    SPTTM = "spttm"
    """Sparse tensor-times-matrix on one mode (paper Equation 3)."""

    SPMTTKRP = "spmttkrp"
    """Sparse matricized tensor times Khatri-Rao product (paper Equation 5/6)."""

    SPTTMC = "spttmc"
    """Sparse tensor-times-matrix chain, the Tucker/HOOI kernel (Equation 4)."""

    @classmethod
    def coerce(cls, value: "OperationKind | str") -> "OperationKind":
        """Accept either an enum member or its string value."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            valid = ", ".join(m.value for m in cls)
            raise ValueError(f"unknown operation {value!r}; expected one of: {valid}") from exc


@dataclass(frozen=True)
class ModeRoles:
    """Role assignment of every tensor mode for one operation instance.

    Attributes
    ----------
    operation:
        Which sparse tensor operation this classification is for.
    mode:
        The operation's target mode (0-based): the TTM product mode, or the
        MTTKRP/TTMc output mode.
    order:
        Tensor order.
    product_modes:
        Modes multiplied against dense factor matrices (indices stored
        explicitly in F-COO).
    index_modes:
        Modes whose value changes delimit reduction segments (compressed to
        the bit-flag in F-COO).
    """

    operation: OperationKind
    mode: int
    order: int
    product_modes: Tuple[int, ...]
    index_modes: Tuple[int, ...]

    @property
    def result_dense_modes(self) -> Tuple[int, ...]:
        """Modes of the *result* that are dense.

        For SpTTM the product mode of the output becomes dense (each
        non-empty fiber fills up with R values); for SpMTTKRP/SpTTMc the
        product modes collapse into the dense column dimension(s) of the
        output matrix (Table I, last column).
        """
        return self.product_modes

    @property
    def result_sparse_modes(self) -> Tuple[int, ...]:
        """Modes of the result that keep the input's sparsity pattern."""
        return self.index_modes


def mode_roles(operation: "OperationKind | str", mode: int, order: int) -> ModeRoles:
    """Classify tensor modes for ``operation`` targeting ``mode`` (Table I).

    Parameters
    ----------
    operation:
        One of :class:`OperationKind` (or its string value).
    mode:
        0-based target mode.  For SpTTM this is the mode the dense matrix
        multiplies (the paper's "SpTTM on mode-3" is ``mode=2`` here); for
        SpMTTKRP/SpTTMc it is the output mode (the paper's "on mode-1" is
        ``mode=0``).
    order:
        Tensor order; must be at least 2 for SpTTM and at least 2 for the
        Khatri-Rao/chain operations (3 is the typical case).
    """
    operation = OperationKind.coerce(operation)
    order = check_positive_int(order, "order")
    if order < 2:
        raise ValueError(f"tensor order must be at least 2 for {operation.value}, got {order}")
    mode = check_mode(mode, order)
    all_modes = tuple(range(order))
    others = tuple(m for m in all_modes if m != mode)

    if operation is OperationKind.SPTTM:
        product_modes: Tuple[int, ...] = (mode,)
        index_modes = others
    elif operation in (OperationKind.SPMTTKRP, OperationKind.SPTTMC):
        product_modes = others
        index_modes = (mode,)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled operation {operation}")

    return ModeRoles(
        operation=operation,
        mode=mode,
        order=order,
        product_modes=product_modes,
        index_modes=index_modes,
    )
