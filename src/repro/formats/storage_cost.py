"""Analytic storage-cost models (paper Table II) and measured sizes.

Table II of the paper reports the per-non-zero storage cost of a third-order
tensor in COO versus F-COO, assuming 32-bit integer indices and
single-precision values:

* COO: ``16 × nnz`` bytes — three index arrays plus one value array.
* F-COO for SpTTM on one mode: ``(8 + 1/8 + 1/(8·threadlen)) × nnz`` bytes —
  one product-mode index array, the values, the packed bit-flag (1 bit per
  non-zero) and the packed start-flag (1 bit per partition of ``threadlen``
  non-zeros).
* F-COO for SpMTTKRP on one mode: ``(12 + 1/8 + 1/(8·threadlen)) × nnz`` —
  two product-mode index arrays instead of one.

The functions below generalise those formulas to arbitrary order and are
checked against the sizes actually measured on
:class:`~repro.formats.fcoo.FCOOTensor` instances by the test suite and the
Table II benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.formats.mode_encoding import OperationKind, mode_roles
from repro.util.validation import check_positive_int

__all__ = [
    "coo_storage_bytes",
    "fcoo_storage_bytes",
    "csf_storage_bytes",
    "StorageReport",
    "storage_report",
]

#: Byte widths assumed by the paper's Table II.
DEFAULT_INDEX_BYTES = 4
DEFAULT_VALUE_BYTES = 4


def coo_storage_bytes(
    nnz: int,
    order: int,
    *,
    index_bytes: int = DEFAULT_INDEX_BYTES,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> float:
    """Bytes needed to store ``nnz`` non-zeros of an ``order``-way tensor in COO.

    ``order`` index arrays plus one value array; for a third-order tensor with
    the default widths this is the paper's ``16 × nnz``.
    """
    nnz = check_positive_int(nnz, "nnz") if nnz else 0
    order = check_positive_int(order, "order")
    return float(nnz) * (order * index_bytes + value_bytes)


def fcoo_storage_bytes(
    nnz: int,
    order: int,
    operation: Union[OperationKind, str],
    mode: int,
    *,
    threadlen: Optional[int] = None,
    index_bytes: int = DEFAULT_INDEX_BYTES,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> float:
    """Bytes needed to store the tensor in F-COO for one operation/mode.

    Implements the Table II formulas generalised to arbitrary order: one
    index array per *product mode*, the value array, ``nnz/8`` bytes of
    bit-flag, and — when ``threadlen`` is given — ``nnz/(8·threadlen)`` bytes
    of start-flag.
    """
    nnz = check_positive_int(nnz, "nnz") if nnz else 0
    roles = mode_roles(operation, mode, order)
    num_product = len(roles.product_modes)
    per_nnz = num_product * index_bytes + value_bytes + 1.0 / 8.0
    if threadlen is not None:
        threadlen = check_positive_int(threadlen, "threadlen")
        per_nnz += 1.0 / (8.0 * threadlen)
    return float(nnz) * per_nnz


def csf_storage_bytes(
    nnz: int,
    level_sizes: "list[int] | tuple[int, ...]",
    *,
    index_bytes: int = DEFAULT_INDEX_BYTES,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> float:
    """Bytes needed by a CSF tree with the given per-level node counts.

    ``level_sizes[-1]`` must equal ``nnz`` (the leaves).  Each level stores
    its node indices; each non-leaf level additionally stores a pointer array
    with one extra sentinel entry.
    """
    if not level_sizes:
        raise ValueError("level_sizes must not be empty")
    if level_sizes[-1] != nnz:
        raise ValueError(
            f"the last level must have one node per non-zero ({nnz}), got {level_sizes[-1]}"
        )
    total = float(nnz) * value_bytes
    for size in level_sizes:
        total += float(size) * index_bytes
    for size in level_sizes[:-1]:
        total += float(size + 1) * index_bytes
    return total


@dataclass(frozen=True)
class StorageReport:
    """Side-by-side storage comparison for one tensor and one operation.

    Produced by :func:`storage_report`; rendered as one row of the Table II
    reproduction.
    """

    operation: OperationKind
    mode: int
    nnz: int
    order: int
    threadlen: Optional[int]
    coo_bytes: float
    fcoo_bytes: float

    @property
    def coo_bytes_per_nnz(self) -> float:
        """COO bytes divided by nnz (the paper reports this coefficient)."""
        return self.coo_bytes / self.nnz if self.nnz else 0.0

    @property
    def fcoo_bytes_per_nnz(self) -> float:
        """F-COO bytes divided by nnz."""
        return self.fcoo_bytes / self.nnz if self.nnz else 0.0

    @property
    def reduction_factor(self) -> float:
        """How many times smaller F-COO is than COO."""
        return self.coo_bytes / self.fcoo_bytes if self.fcoo_bytes else float("inf")


def storage_report(
    nnz: int,
    order: int,
    operation: Union[OperationKind, str],
    mode: int,
    *,
    threadlen: Optional[int] = None,
    index_bytes: int = DEFAULT_INDEX_BYTES,
    value_bytes: int = DEFAULT_VALUE_BYTES,
) -> StorageReport:
    """Build a :class:`StorageReport` comparing COO and F-COO for one case."""
    op = OperationKind.coerce(operation)
    return StorageReport(
        operation=op,
        mode=mode,
        nnz=nnz,
        order=order,
        threadlen=threadlen,
        coo_bytes=coo_storage_bytes(nnz, order, index_bytes=index_bytes, value_bytes=value_bytes),
        fcoo_bytes=fcoo_storage_bytes(
            nnz,
            order,
            op,
            mode,
            threadlen=threadlen,
            index_bytes=index_bytes,
            value_bytes=value_bytes,
        ),
    )
