"""F-COO: the flagged coordinate storage format (paper Section IV-B).

F-COO is the paper's unified sparse tensor format.  For a given operation
(SpTTM / SpMTTKRP / SpTTMc) and target mode it stores, per non-zero:

* the indices of the **product modes** only (they address rows of the dense
  factor matrices during the Hadamard / Kronecker product), and
* the non-zero **value**,

and compresses the **index modes** down to two flag arrays:

* ``bf`` (bit-flag) — one bit per non-zero; set when the non-zero starts a
  new *segment*, i.e. its index-mode coordinates differ from the previous
  non-zero's.  A segment is a fiber for SpTTM and a slice for
  SpMTTKRP/SpTTMc.  The bit-flag is what lets the unified kernels run a
  segmented scan instead of atomic updates.
* ``sf`` (start-flag) — one bit per thread partition (``threadlen``
  non-zeros each); set when the partition's first non-zero starts a new
  segment, i.e. no segment spans the boundary with the previous partition.
  Thread 0's flag is always set.

The format additionally keeps a small per-*segment* table of the index-mode
coordinates (one entry per non-empty fiber/slice, not per non-zero) so the
kernel knows where to scatter each reduced segment in the output.  This is
the same information ParTI's sCOO output format stores and it is not charged
to the per-non-zero storage cost of Table II.

The encoding requires the non-zeros to be sorted with the index modes as the
primary sort keys, so that every fiber/slice occupies one contiguous run —
:meth:`FCOOTensor.from_sparse` performs that sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.formats.mode_encoding import ModeRoles, OperationKind, mode_roles
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_positive_int

__all__ = ["FCOOTensor", "FCOOChunk"]


@dataclass(frozen=True)
class FCOOChunk:
    """One threadlen-aligned slice of an F-COO non-zero stream.

    Produced by :meth:`FCOOTensor.chunk` for the out-of-core streamed
    execution path: each chunk is itself a complete :class:`FCOOTensor`
    (its bit-flag's first entry is forced on, opening a *local* segment)
    plus the bookkeeping needed to merge per-chunk partial results back
    into the global per-segment output.

    Attributes
    ----------
    tensor:
        The chunk's own F-COO encoding.  Its ``segment_index_coords`` are
        the *global* scatter coordinates of its local segments, so a chunk
        can be executed by the unchanged one-shot kernels.
    start / stop:
        Non-zero range ``[start, stop)`` of the chunk in the parent's
        stream; ``start`` is always a multiple of the chunking
        ``threadlen`` so per-thread partitions never straddle chunks.
    segment_offset:
        Global segment id of the chunk's first local segment.  Local
        segment ``j`` contributes to global segment ``segment_offset + j``.
    carries_in:
        ``True`` when the chunk's first non-zero continues a segment begun
        in the previous chunk (the parent's ``bf[start]`` is unset — the
        same condition the ``sf`` start-flag array records per thread
        partition).  The carried segment's partial sums from both chunks
        must be merged, which the segment-offset mapping does implicitly.
    """

    tensor: "FCOOTensor"
    start: int
    stop: int
    segment_offset: int
    carries_in: bool

    @property
    def nnz(self) -> int:
        """Non-zeros in this chunk."""
        return self.stop - self.start

    @property
    def num_segments(self) -> int:
        """Local segments (the carried-in segment counts as local segment 0)."""
        return self.tensor.num_segments


@dataclass(frozen=True)
class FCOOTensor:
    """A sparse tensor encoded in F-COO for one operation / target mode.

    Instances are produced by :meth:`from_sparse` and are immutable; encoding
    the same tensor for a different operation or mode produces a different
    ``FCOOTensor`` (the preprocessing the paper performs once on the host for
    every mode before a CP iteration).

    Attributes
    ----------
    roles:
        The :class:`~repro.formats.mode_encoding.ModeRoles` this encoding was
        built for (operation, target mode, product/index mode split).
    shape:
        Shape of the original tensor.
    product_indices:
        ``(nnz, len(product_modes))`` array with the product-mode indices of
        every non-zero, column ``p`` holding the index of
        ``roles.product_modes[p]``.
    values:
        ``(nnz,)`` non-zero values.
    bf:
        ``(nnz,)`` boolean segment-start flags (the bit-flag array).
    segment_ids:
        ``(nnz,)`` int array mapping every non-zero to its segment
        (``cumsum(bf) - 1``); precomputed because both the simulated kernels
        and the cost models need it.
    segment_index_coords:
        ``(num_segments, len(index_modes))`` array with the index-mode
        coordinates of each segment (the output scatter addresses).
    index_dtype / value_dtype:
        Dtypes used for the stored arrays (32-bit unsigned indices and
        single-precision values by default, as in the paper's cost model).
    """

    roles: ModeRoles
    shape: Tuple[int, ...]
    product_indices: np.ndarray
    values: np.ndarray
    bf: np.ndarray
    segment_ids: np.ndarray
    segment_index_coords: np.ndarray
    index_dtype: np.dtype
    value_dtype: np.dtype

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sparse(
        cls,
        tensor: SparseTensor,
        operation: Union[OperationKind, str],
        mode: int,
        *,
        index_dtype: np.dtype | type = np.uint32,
        value_dtype: np.dtype | type = np.float32,
    ) -> "FCOOTensor":
        """Encode ``tensor`` in F-COO for ``operation`` on ``mode``.

        The non-zeros are sorted so index modes are the primary keys (in
        increasing mode order) and product modes the secondary keys; this
        makes each fiber/slice a contiguous segment, which is what the
        bit-flag encoding requires.
        """
        roles = mode_roles(operation, mode, tensor.order)
        index_dtype = np.dtype(index_dtype)
        value_dtype = np.dtype(value_dtype)
        for m in roles.product_modes:
            if tensor.shape[m] > np.iinfo(index_dtype).max + 1:
                raise ValueError(
                    f"product mode {m} of size {tensor.shape[m]} does not fit in {index_dtype}"
                )

        sort_order = list(roles.index_modes) + list(roles.product_modes)
        sorted_tensor = tensor.sort_by_modes(sort_order)
        idx = np.asarray(sorted_tensor.indices)
        values = np.ascontiguousarray(
            np.asarray(sorted_tensor.values).astype(value_dtype)
        )
        nnz = sorted_tensor.nnz

        if nnz == 0:
            product_indices = np.empty((0, len(roles.product_modes)), dtype=index_dtype)
            bf = np.empty(0, dtype=bool)
            segment_ids = np.empty(0, dtype=np.int64)
            segment_index_coords = np.empty((0, len(roles.index_modes)), dtype=np.int64)
        else:
            product_indices = np.ascontiguousarray(
                idx[:, list(roles.product_modes)].astype(index_dtype)
            )
            index_coords = idx[:, list(roles.index_modes)]
            changed = np.any(index_coords[1:] != index_coords[:-1], axis=1)
            bf = np.concatenate(([True], changed))
            segment_ids = np.cumsum(bf, dtype=np.int64) - 1
            segment_index_coords = index_coords[bf].astype(np.int64)

        return cls(
            roles=roles,
            shape=tensor.shape,
            product_indices=product_indices,
            values=values,
            bf=bf,
            segment_ids=segment_ids,
            segment_index_coords=segment_index_coords,
            index_dtype=index_dtype,
            value_dtype=value_dtype,
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def operation(self) -> OperationKind:
        """The operation this encoding targets."""
        return self.roles.operation

    @property
    def mode(self) -> int:
        """The operation's target mode (0-based)."""
        return self.roles.mode

    @property
    def order(self) -> int:
        """Tensor order."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.shape[0])

    @property
    def num_segments(self) -> int:
        """Number of reduction segments (non-empty fibers or slices)."""
        return int(self.segment_index_coords.shape[0])

    def product_mode_indices(self, position: int) -> np.ndarray:
        """Index column for the ``position``-th product mode."""
        if not 0 <= position < len(self.roles.product_modes):
            raise ValueError(
                f"position must be in [0, {len(self.roles.product_modes)}), got {position}"
            )
        return self.product_indices[:, position]

    def segment_sizes(self) -> np.ndarray:
        """Number of non-zeros per segment."""
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.segment_ids, minlength=self.num_segments).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Partitioning / start flags
    # ------------------------------------------------------------------ #
    def num_partitions(self, threadlen: int) -> int:
        """Number of per-thread partitions when each thread takes ``threadlen`` non-zeros."""
        threadlen = check_positive_int(threadlen, "threadlen")
        return int(-(-self.nnz // threadlen)) if self.nnz else 0

    def start_flags(self, threadlen: int) -> np.ndarray:
        """The ``sf`` (start-flag) array for a given ``threadlen``.

        ``sf[t]`` is ``True`` when partition ``t`` begins with a non-zero
        that starts a new segment, i.e. the partition does not need to merge
        a partial sum carried over from partition ``t - 1``.  Partition 0 is
        always flagged (paper Figure 2 caption).
        """
        threadlen = check_positive_int(threadlen, "threadlen")
        n_parts = self.num_partitions(threadlen)
        if n_parts == 0:
            return np.zeros(0, dtype=bool)
        starts = np.arange(n_parts, dtype=np.int64) * threadlen
        sf = self.bf[starts].copy()
        sf[0] = True
        return sf

    def partition_spans_segments(self, threadlen: int) -> np.ndarray:
        """Number of distinct segments touched by each partition.

        Used by the GPU cost model: a partition touching many segments emits
        more partial results into the segmented-scan stage.
        """
        threadlen = check_positive_int(threadlen, "threadlen")
        n_parts = self.num_partitions(threadlen)
        out = np.zeros(n_parts, dtype=np.int64)
        if n_parts == 0:
            return out
        part_of_nnz = np.arange(self.nnz, dtype=np.int64) // threadlen
        # Segment boundaries within each partition = bf flags set past the
        # first element, plus one for the segment carried into the partition.
        np.add.at(out, part_of_nnz[self.bf], 1)
        first_nnz = np.arange(n_parts, dtype=np.int64) * threadlen
        carried = ~self.bf[first_nnz]
        out += carried.astype(np.int64)
        return out

    # ------------------------------------------------------------------ #
    # Out-of-core chunking
    # ------------------------------------------------------------------ #
    def chunk(self, chunk_nnz: int, *, threadlen: int = 1) -> list:
        """Split the non-zero stream into :class:`FCOOChunk` slices.

        Parameters
        ----------
        chunk_nnz:
            Maximum non-zeros per chunk; must be a multiple of
            ``threadlen`` so chunk boundaries coincide with per-thread
            partition boundaries (a partition never straddles two device
            buffers).
        threadlen:
            The per-thread work size the chunks will be executed with.

        Returns
        -------
        list of FCOOChunk
            Contiguous, non-overlapping chunks covering all non-zeros (an
            empty list for an empty tensor).  A segment that straddles a
            chunk boundary appears as the last local segment of one chunk
            and the first (``carries_in``) local segment of the next; both
            map to the same global segment id, so summing per-chunk
            partial results per global segment reproduces the one-shot
            reduction.
        """
        chunk_nnz = check_positive_int(chunk_nnz, "chunk_nnz")
        threadlen = check_positive_int(threadlen, "threadlen")
        if chunk_nnz % threadlen != 0:
            raise ValueError(
                f"chunk_nnz ({chunk_nnz}) must be a multiple of threadlen ({threadlen})"
            )
        chunks: list = []
        if self.nnz == 0:
            return chunks
        for start in range(0, self.nnz, chunk_nnz):
            stop = min(start + chunk_nnz, self.nnz)
            chunks.append(self.chunk_span(start, stop, threadlen=threadlen))
        return chunks

    def chunk_span(self, start: int, stop: int, *, threadlen: int = 1) -> FCOOChunk:
        """One :class:`FCOOChunk` covering the non-zero range ``[start, stop)``.

        The building block :meth:`chunk` and the capability-weighted shard
        partitioner share: ``start`` must be a ``threadlen`` multiple (chunk
        boundaries must coincide with per-thread partition boundaries) and
        ``stop`` is clamped to the stream length.  ``start == stop`` yields
        an *empty* chunk — the weighted partitioner uses these as
        placeholders so shard position keeps matching device slot even when
        a very slow device is allocated no work.
        """
        threadlen = check_positive_int(threadlen, "threadlen")
        if not 0 <= start <= self.nnz:
            raise ValueError(f"start must be in [0, {self.nnz}], got {start}")
        if start % threadlen != 0 and start != self.nnz:
            # start == nnz is always legal: it denotes an empty tail span
            # (the stream length itself need not be threadlen-aligned).
            raise ValueError(
                f"start ({start}) must be a multiple of threadlen ({threadlen})"
            )
        stop = min(int(stop), self.nnz)
        if stop < start:
            raise ValueError(f"stop ({stop}) must be at least start ({start})")
        local_bf = self.bf[start:stop].copy()
        carries_in = bool(start > 0 and stop > start and not local_bf[0])
        if stop > start:
            local_bf[0] = True
        local_segment_ids = np.cumsum(local_bf, dtype=np.int64) - 1
        # The chunk's first non-zero belongs to this global segment, whether
        # it opens it (bf set) or continues it (carried in).  An empty span
        # owns no segments at all.
        segment_offset = int(self.segment_ids[start]) if stop > start else 0
        num_local_segments = int(local_segment_ids[-1]) + 1 if stop > start else 0
        chunk_tensor = FCOOTensor(
            roles=self.roles,
            shape=self.shape,
            product_indices=self.product_indices[start:stop],
            values=self.values[start:stop],
            bf=local_bf,
            segment_ids=local_segment_ids,
            segment_index_coords=self.segment_index_coords[
                segment_offset : segment_offset + num_local_segments
            ],
            index_dtype=self.index_dtype,
            value_dtype=self.value_dtype,
        )
        return FCOOChunk(
            tensor=chunk_tensor,
            start=start,
            stop=stop,
            segment_offset=segment_offset,
            carries_in=carries_in,
        )

    # ------------------------------------------------------------------ #
    # Storage accounting
    # ------------------------------------------------------------------ #
    @staticmethod
    def estimate_storage_bytes(
        nnz: int,
        num_product_modes: int,
        *,
        threadlen: Optional[int] = None,
        index_dtype: np.dtype | type = np.uint32,
        value_dtype: np.dtype | type = np.float32,
    ) -> int:
        """Table II storage bytes from shape statistics alone.

        The same accounting as :meth:`storage_bytes` without needing the
        encoding built — what the serving placer's admission control sizes
        jobs with before spending any preprocessing.  Counts the
        product-mode index arrays, the value array, the packed bit-flag
        (1 bit per non-zero) and, when ``threadlen`` is given, the packed
        start-flag array (1 bit per partition).
        """
        index_dtype = np.dtype(index_dtype)
        value_dtype = np.dtype(value_dtype)
        bytes_total = num_product_modes * nnz * index_dtype.itemsize
        bytes_total += nnz * value_dtype.itemsize
        bytes_total += -(-nnz // 8)  # packed bit-flag, 1 bit per nnz
        if threadlen is not None and nnz:
            n_parts = -(-nnz // check_positive_int(threadlen, "threadlen"))
            bytes_total += -(-n_parts // 8)
        return int(bytes_total)

    def storage_bytes(self, threadlen: Optional[int] = None) -> int:
        """Bytes of per-non-zero storage, matching the Table II accounting.

        See :meth:`estimate_storage_bytes`; the per-segment output
        coordinates are *not* included, mirroring Table II which charges
        only the tensor's own storage.
        """
        return FCOOTensor.estimate_storage_bytes(
            self.nnz,
            int(self.product_indices.shape[1]),
            threadlen=threadlen,
            index_dtype=self.index_dtype,
            value_dtype=self.value_dtype,
        )

    def packed_bit_flags(self) -> np.ndarray:
        """The bit-flag array packed 8 flags per byte (as stored on the GPU)."""
        return np.packbits(self.bf.astype(np.uint8))

    # ------------------------------------------------------------------ #
    # Round trip (verification)
    # ------------------------------------------------------------------ #
    def to_sparse(self) -> SparseTensor:
        """Reconstruct the original :class:`SparseTensor`.

        Inverse of :meth:`from_sparse` up to non-zero ordering; used by the
        test suite to verify the encoding is lossless.
        """
        if self.nnz == 0:
            return SparseTensor.empty(self.shape)
        indices = np.zeros((self.nnz, self.order), dtype=np.int64)
        for col, m in enumerate(self.roles.product_modes):
            indices[:, m] = self.product_indices[:, col].astype(np.int64)
        index_coords = self.segment_index_coords[self.segment_ids]
        for col, m in enumerate(self.roles.index_modes):
            indices[:, m] = index_coords[:, col]
        return SparseTensor(
            indices,
            self.values.astype(np.float64),
            self.shape,
            sum_duplicates=False,
            sort=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FCOOTensor(op={self.operation.value}, mode={self.mode}, shape={self.shape}, "
            f"nnz={self.nnz}, segments={self.num_segments})"
        )
