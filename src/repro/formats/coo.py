"""Plain coordinate (COO) storage, as used by ParTI's GPU SpMTTKRP.

``COOTensor`` is a thin, explicitly-laid-out view over
:class:`repro.tensor.SparseTensor`: one integer index array per mode plus a
value array, i.e. exactly what the paper's Figure 2(a) shows and what the
Table II cost model charges (``4 bytes × order`` of indices plus 4 bytes of
value per non-zero with 32-bit indices / single precision).

The class exists (rather than using ``SparseTensor`` directly in the
baselines) because the storage *layout* matters to the cost models: COO keeps
every index of every non-zero resident in GPU global memory, which is the
memory-footprint disadvantage F-COO removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["COOTensor"]


@dataclass(frozen=True)
class COOTensor:
    """Coordinate-format sparse tensor with per-mode index arrays.

    Attributes
    ----------
    shape:
        Tensor dimensions.
    mode_index_arrays:
        Tuple with one ``(nnz,)`` index array per mode.
    values:
        ``(nnz,)`` value array.
    index_dtype / value_dtype:
        Storage dtypes; the paper (and ParTI) use 32-bit indices and
        single-precision values, which is the default here and what the
        Table II byte counts assume.
    sort_mode:
        The mode whose index varies slowest in the stored order (ParTI sorts
        the non-zeros by the output mode before launching SpMTTKRP so that
        atomically-updated rows are clustered).
    """

    shape: Tuple[int, ...]
    mode_index_arrays: Tuple[np.ndarray, ...]
    values: np.ndarray
    index_dtype: np.dtype
    value_dtype: np.dtype
    sort_mode: int

    # ------------------------------------------------------------------ #
    @classmethod
    def from_sparse(
        cls,
        tensor: SparseTensor,
        *,
        sort_mode: int = 0,
        index_dtype: np.dtype | type = np.uint32,
        value_dtype: np.dtype | type = np.float32,
    ) -> "COOTensor":
        """Lay out a :class:`SparseTensor` in COO arrays sorted by ``sort_mode``.

        The non-zeros are sorted lexicographically with ``sort_mode`` as the
        primary key and the remaining modes (in increasing order) as
        secondary keys — the ordering ParTI assumes.
        """
        sort_mode = check_mode(sort_mode, tensor.order)
        index_dtype = np.dtype(index_dtype)
        value_dtype = np.dtype(value_dtype)
        for dim in tensor.shape:
            if dim > np.iinfo(index_dtype).max + 1:
                raise ValueError(
                    f"mode of size {dim} does not fit in index dtype {index_dtype}"
                )
        mode_order = [sort_mode] + [m for m in range(tensor.order) if m != sort_mode]
        sorted_tensor = tensor.sort_by_modes(mode_order)
        idx = np.asarray(sorted_tensor.indices)
        arrays = tuple(
            np.ascontiguousarray(idx[:, m].astype(index_dtype)) for m in range(tensor.order)
        )
        values = np.ascontiguousarray(np.asarray(sorted_tensor.values).astype(value_dtype))
        return cls(
            shape=tensor.shape,
            mode_index_arrays=arrays,
            values=values,
            index_dtype=index_dtype,
            value_dtype=value_dtype,
            sort_mode=sort_mode,
        )

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Tensor order."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self.values.shape[0])

    def mode_indices(self, mode: int) -> np.ndarray:
        """Index array of one mode."""
        mode = check_mode(mode, self.order)
        return self.mode_index_arrays[mode]

    def storage_bytes(self) -> int:
        """Total bytes of the index and value arrays actually stored."""
        total = self.values.nbytes
        for arr in self.mode_index_arrays:
            total += arr.nbytes
        return int(total)

    def to_sparse(self) -> SparseTensor:
        """Convert back to the master :class:`SparseTensor` representation."""
        if self.nnz == 0:
            return SparseTensor.empty(self.shape)
        indices = np.stack([a.astype(np.int64) for a in self.mode_index_arrays], axis=1)
        return SparseTensor(
            indices,
            self.values.astype(np.float64),
            self.shape,
            sum_duplicates=False,
            sort=True,
        )
