"""Sparse tensor storage formats.

This subpackage implements every storage format that appears in the paper's
discussion and evaluation:

* :class:`~repro.formats.coo.COOTensor` — the plain coordinate format that
  ParTI's GPU SpMTTKRP uses (all mode indices stored explicitly).
* :class:`~repro.formats.fcoo.FCOOTensor` — the paper's contribution: the
  flagged coordinate format that keeps only product-mode indices and encodes
  index-mode changes in a bit-flag array (Section IV-B, Figure 2, Table II).
* :class:`~repro.formats.csf.CSFTensor` — SPLATT's compressed sparse fiber
  tree, used by the CPU MTTKRP baseline.
* :class:`~repro.formats.semisparse.SemiSparseTensor` — the sCOO format of
  Li et al. for semi-sparse tensors (SpTTM outputs and the intermediate
  tensor of the two-step MTTKRP, Figure 3a).
* :mod:`~repro.formats.storage_cost` — the analytic byte-cost model of
  Table II plus measured sizes of the in-memory structures.
* :mod:`~repro.formats.mode_encoding` — the operation/mode classification of
  Table I (product modes, index modes, sparse/dense modes of the result).
"""

from repro.formats.mode_encoding import (
    OperationKind,
    ModeRoles,
    mode_roles,
)
from repro.formats.coo import COOTensor
from repro.formats.fcoo import FCOOChunk, FCOOTensor
from repro.formats.csf import CSFTensor
from repro.formats.semisparse import SemiSparseTensor
from repro.formats.storage_cost import (
    coo_storage_bytes,
    fcoo_storage_bytes,
    csf_storage_bytes,
    StorageReport,
    storage_report,
)

__all__ = [
    "OperationKind",
    "ModeRoles",
    "mode_roles",
    "COOTensor",
    "FCOOTensor",
    "FCOOChunk",
    "CSFTensor",
    "SemiSparseTensor",
    "coo_storage_bytes",
    "fcoo_storage_bytes",
    "csf_storage_bytes",
    "StorageReport",
    "storage_report",
]
