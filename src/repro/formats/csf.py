"""CSF: SPLATT's compressed sparse fiber tree (Smith & Karypis, 2015).

The paper uses SPLATT as its CPU baseline for SpMTTKRP and CP decomposition;
SPLATT stores the tensor as a tree whose levels correspond to the tensor
modes in a chosen order.  Level 0 holds the distinct indices of the root
mode, each of which points at a contiguous range of level-1 nodes, and so on
down to the leaves which carry the non-zero values.

This generalises CSR: for a third-order tensor ordered ``(i, j, k)`` the tree
has one node per distinct ``i``, one per distinct ``(i, j)`` fiber, and one
leaf per non-zero.  SPLATT's MTTKRP walks the tree depth-first, which gives
good temporal locality on CPUs but — as the paper argues in Section III-A —
maps poorly onto GPUs and makes the amount of exposed parallelism depend on
the mode ordering (the root level can be very short for "oddly shaped"
tensors such as brainq).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["CSFTensor"]


@dataclass(frozen=True)
class CSFTensor:
    """Compressed sparse fiber tree for one mode ordering.

    Attributes
    ----------
    shape:
        Original tensor shape.
    mode_order:
        Permutation of the modes; ``mode_order[0]`` is the root level.
        SPLATT conventionally puts the MTTKRP output mode at the root.
    fids:
        One array per level: ``fids[level][n]`` is the index (in mode
        ``mode_order[level]``) of node ``n`` of that level.
    fptr:
        One array per *non-leaf* level: ``fptr[level]`` has
        ``len(fids[level]) + 1`` entries; node ``n`` of ``level`` owns the
        children ``fptr[level][n] : fptr[level][n+1]`` of ``level + 1``.
    values:
        Leaf values, aligned with ``fids[-1]``.
    """

    shape: Tuple[int, ...]
    mode_order: Tuple[int, ...]
    fids: Tuple[np.ndarray, ...]
    fptr: Tuple[np.ndarray, ...]
    values: np.ndarray

    # ------------------------------------------------------------------ #
    @classmethod
    def from_sparse(cls, tensor: SparseTensor, mode_order: Sequence[int]) -> "CSFTensor":
        """Build the CSF tree of ``tensor`` with the given level ordering."""
        mode_order = tuple(check_mode(m, tensor.order) for m in mode_order)
        if sorted(mode_order) != list(range(tensor.order)):
            raise ValueError(
                f"mode_order must be a permutation of 0..{tensor.order - 1}, got {mode_order}"
            )
        sorted_tensor = tensor.sort_by_modes(list(mode_order))
        idx = np.asarray(sorted_tensor.indices)
        values = np.asarray(sorted_tensor.values, dtype=np.float64).copy()
        nnz = sorted_tensor.nnz
        order = tensor.order

        if nnz == 0:
            fids = tuple(np.empty(0, dtype=np.int64) for _ in range(order))
            fptr = tuple(np.zeros(1, dtype=np.int64) for _ in range(order - 1))
            return cls(tensor.shape, mode_order, fids, fptr, values)

        # For every level, a node is a distinct prefix (mode_order[0..level]).
        # new_prefix[level][z] is True when non-zero z starts a new prefix of
        # that length.
        fids_list: List[np.ndarray] = []
        fptr_list: List[np.ndarray] = []
        prev_new = np.zeros(nnz, dtype=bool)  # accumulates across levels
        prev_new[0] = True
        node_of_nnz_prev: np.ndarray | None = None
        for level, mode in enumerate(mode_order):
            col = idx[:, mode]
            if level == 0:
                changed = np.concatenate(([True], col[1:] != col[:-1]))
            else:
                changed = prev_new.copy()
                changed[1:] |= col[1:] != col[:-1]
                changed[0] = True
            node_of_nnz = np.cumsum(changed, dtype=np.int64) - 1
            fids_list.append(col[changed].astype(np.int64))
            if level > 0:
                assert node_of_nnz_prev is not None
                # fptr for the previous level: first child node id per parent,
                # plus the total number of nodes at this level as the sentinel.
                parent_starts = np.concatenate(
                    ([True], node_of_nnz_prev[1:] != node_of_nnz_prev[:-1])
                )
                ptr = np.concatenate((node_of_nnz[parent_starts], [node_of_nnz[-1] + 1]))
                fptr_list.append(ptr.astype(np.int64))
            prev_new = changed
            node_of_nnz_prev = node_of_nnz

        return cls(
            shape=tensor.shape,
            mode_order=mode_order,
            fids=tuple(fids_list),
            fptr=tuple(fptr_list),
            values=values,
        )

    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        """Tensor order (number of tree levels)."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of non-zeros (leaves)."""
        return int(self.values.shape[0])

    def level_size(self, level: int) -> int:
        """Number of nodes at a level (level 0 is the root mode)."""
        if not 0 <= level < self.order:
            raise ValueError(f"level must be in [0, {self.order}), got {level}")
        return int(self.fids[level].shape[0])

    def children(self, level: int, node: int) -> Tuple[int, int]:
        """Half-open child range ``(start, stop)`` of ``node`` at ``level``."""
        if not 0 <= level < self.order - 1:
            raise ValueError(f"level must be in [0, {self.order - 1}), got {level}")
        ptr = self.fptr[level]
        if not 0 <= node < ptr.shape[0] - 1:
            raise ValueError(f"node {node} out of range for level {level}")
        return int(ptr[node]), int(ptr[node + 1])

    def storage_bytes(self, *, index_bytes: int = 4, value_bytes: int = 4) -> int:
        """Bytes used by the tree (fids + fptr + values) with the given widths."""
        total = self.nnz * value_bytes
        for arr in self.fids:
            total += arr.shape[0] * index_bytes
        for arr in self.fptr:
            total += arr.shape[0] * index_bytes
        return int(total)

    def to_sparse(self) -> SparseTensor:
        """Expand the tree back to coordinate form (for verification)."""
        if self.nnz == 0:
            return SparseTensor.empty(self.shape)
        order = self.order
        indices = np.zeros((self.nnz, order), dtype=np.int64)
        # Leaves: the last level's fids are per-nnz already.
        indices[:, self.mode_order[-1]] = self.fids[-1]
        # Walk upward: per level, compute the number of leaves under each
        # node, then expand that level's node indices down to the leaves.
        leaves_per_node: List[np.ndarray] = [np.ones(self.nnz, dtype=np.int64)]
        for level in range(order - 2, -1, -1):
            ptr = self.fptr[level]
            child_leaves = leaves_per_node[0]
            sums = (
                np.add.reduceat(child_leaves, ptr[:-1])
                if ptr.shape[0] > 1
                else np.zeros(0, dtype=np.int64)
            )
            leaves_per_node.insert(0, sums.astype(np.int64))
        for level in range(order - 1):
            expanded = np.repeat(self.fids[level], leaves_per_node[level])
            indices[:, self.mode_order[level]] = expanded
        return SparseTensor(
            indices,
            self.values,
            self.shape,
            sum_duplicates=False,
            sort=True,
        )
