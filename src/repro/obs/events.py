"""Structured JSONL event log for the scheduler event loop.

Where the metrics registry answers "how much", the event log answers
"what happened, in order": every admission, dispatch, preemption,
failure, recovery, and scale decision the serving scheduler takes is
appended as one :class:`Event` and exported one-JSON-object-per-line
(``python -m repro serve --events out.jsonl``).

The schema is stable and versioned so downstream consumers (trace
replay, ROADMAP item 5's adaptive policies) can parse old logs:

* every line carries ``v`` (schema version), ``seq`` (0-based emission
  index), ``t`` (simulated seconds), ``kind``, ``job_id`` (empty for
  cluster-level events);
* ``kind`` is drawn from the closed :data:`EVENT_KINDS` vocabulary;
* event-specific detail fields follow in sorted key order.

All timestamps are simulated time — like the metrics registry, the log
never reads a wall clock, so a fixed seed yields a byte-identical file.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

__all__ = ["EVENT_SCHEMA_VERSION", "EVENT_KINDS", "Event", "EventLog"]

#: Bump when a line's layout changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: The closed vocabulary of event kinds the scheduler emits.
EVENT_KINDS = (
    "admit",  # job accepted into the ready queue
    "reject",  # job shed at admission (queue full)
    "dispatch",  # job placed and committed onto device resources
    "complete",  # job's committed work finished
    "preempt",  # victim released/truncated for a latency job
    "resume",  # preempted victim re-booked from its ledger
    "node_failure",  # chaos: a node was lost
    "node_recovery",  # cluster re-formed on the survivors
    "requeue",  # in-flight victim of a failure re-admitted
    "scale",  # autoscaler parked or unparked devices
    "nic_reorder",  # NIC discipline let a queued collective overtake another
)


@dataclass(frozen=True)
class Event:
    """One structured log line (before JSON encoding)."""

    seq: int
    time_s: float
    kind: str
    job_id: str = ""
    fields: Tuple[Tuple[str, object], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """The stable wire layout: fixed header keys, sorted detail keys."""
        out: Dict[str, object] = {
            "v": EVENT_SCHEMA_VERSION,
            "seq": self.seq,
            "t": self.time_s,
            "kind": self.kind,
            "job_id": self.job_id,
        }
        for key, value in self.fields:
            out[key] = value
        return out


@dataclass
class EventLog:
    """A deterministic event log.

    Emission is append-only, but the scheduler commits work *ahead* of
    simulated time — a ``dispatch``/``complete`` pair carries future
    timestamps — so a commitment that is later revoked (a trial booking
    rolled back, a preempted victim, a chaos teardown) must also revoke
    its provisional events: :meth:`rollback` discards everything past a
    :meth:`mark`, and :meth:`retract` removes one stale event.  Both
    keep ``seq`` contiguous, so the exported log always reads as the
    final schedule's true history.
    """

    events: List[Event] = field(default_factory=list)

    def emit(self, kind: str, *, time_s: float, job_id: str = "", **fields: object) -> Event:
        """Append one event; detail ``fields`` are stored in sorted key order.

        ``kind`` must come from :data:`EVENT_KINDS` and detail fields may
        not collide with the header keys — both are schema guarantees, so
        violations raise instead of producing unparseable logs.
        """
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        if not math.isfinite(time_s) or time_s < 0.0:
            raise ValueError(f"event time must be finite and non-negative, got {time_s}")
        reserved = {"v", "seq", "t", "kind", "job_id"} & set(fields)
        if reserved:
            raise ValueError(f"detail fields shadow header keys: {sorted(reserved)}")
        event = Event(
            seq=len(self.events),
            time_s=float(time_s),
            kind=kind,
            job_id=job_id,
            fields=tuple(sorted(fields.items())),
        )
        self.events.append(event)
        return event

    def mark(self) -> int:
        """A checkpoint for :meth:`rollback` (the current event count)."""
        return len(self.events)

    def rollback(self, mark: int) -> int:
        """Discard every event emitted since ``mark``; returns the count.

        Used around trial commitments: take a :meth:`mark`, commit, and
        roll the events back if the booking itself is rolled back.
        """
        if not 0 <= mark <= len(self.events):
            raise ValueError(
                f"mark {mark} outside the log (0..{len(self.events)})"
            )
        dropped = len(self.events) - mark
        del self.events[mark:]
        return dropped

    def retract(self, event: Event) -> None:
        """Remove one previously emitted event (matched by identity).

        For revoking a single provisional event — e.g. a preempted
        victim's stale ``complete`` — without disturbing the real events
        emitted around it.  Surviving events keep their emission-time
        ``seq`` (so handles held elsewhere stay valid); the export
        renumbers by final position, keeping the wire format contiguous.
        """
        for index, candidate in enumerate(self.events):
            if candidate is event:
                del self.events[index]
                return
        raise ValueError(f"event not in log: {event!r}")

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Dict[str, int]:
        """Events per kind (only kinds that occurred), in vocabulary order."""
        out = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            out[event.kind] += 1
        return {kind: n for kind, n in out.items() if n}

    def to_jsonl(self) -> str:
        """The log as JSON Lines (one compact object per event).

        ``seq`` on the wire is the event's final position — after any
        :meth:`retract`, the exported log still numbers 0..n-1.
        """
        return "".join(
            json.dumps(replace(event, seq=index).to_dict(), separators=(",", ":"))
            + "\n"
            for index, event in enumerate(self.events)
        )

    def write(self, path: str) -> None:
        """Write :meth:`to_jsonl` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
