"""Observability: deterministic metrics, structured events, span attribution.

The telemetry layer over the unified simulated-time engine
(:mod:`repro.gpusim.timeline`).  Three pieces, one design rule — nothing
here ever changes modeled time, and nothing reads a wall clock, so every
export is byte-deterministic for a fixed seed:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms) with Prometheus text and JSON export; carried
  on :class:`~repro.context.ExecContext` so kernels, drivers, the
  decomposition algorithms, the scheduler, and the autoscaler all
  publish into the one registry of the run.
* :mod:`repro.obs.events` — :class:`EventLog`, the scheduler's JSONL
  structured event stream (admission, dispatch, preemption, failure,
  recovery, scale) with a stable versioned schema.
* :mod:`repro.obs.attribution` — fold span-tagged bookings into per-job
  and per-resource cost breakdowns (:func:`attribute`), reconciled
  exactly against each resource's busy seconds.

``Span`` itself lives in :mod:`repro.gpusim.timeline` (the engine cannot
import its own observers) and is re-exported here for convenience.
"""

from repro.gpusim.timeline import SPAN_PHASES, Span
from repro.obs.attribution import Attribution, JobCost, ResourceCost, attribute
from repro.obs.events import EVENT_KINDS, EVENT_SCHEMA_VERSION, Event, EventLog
from repro.obs.metrics import (
    KERNEL_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe_kernel,
)

__all__ = [
    "Span",
    "SPAN_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KERNEL_SECONDS_BUCKETS",
    "observe_kernel",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "Attribution",
    "JobCost",
    "ResourceCost",
    "attribute",
]
