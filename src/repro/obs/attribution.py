"""Fold a Timeline's event trace into per-job / per-resource cost breakdowns.

The Timeline records *what happened* — every booking, with its resource,
window, and (since the observability layer) an optional :class:`Span`
naming the job, kernel, and phase that incurred it.  This module answers
the two attribution questions ROADMAP item 5's adaptive policies need:

* **per job**: how many resource-seconds did job X spend staging,
  computing, in collectives, resuming after preemption, or recovering
  after a node loss — and how long did its collectives queue behind
  other tenants' traffic (``nic_wait_s``)?
* **per resource**: of a resource's booked busy seconds, how many are
  attributed to some job's span?  A *gap* (busy seconds no span claims)
  means a layer forgot to tag its bookings — the benchmark regression
  gate keeps ``attribution_gap_count`` at zero for serving runs.

Attributed times are **resource-seconds** (a gang booking over four copy
lanes contributes four lanes' worth), which is exactly what makes the
per-resource reconciliation an identity: summing every job's attributed
seconds on a resource reproduces that resource's ``busy_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.gpusim.timeline import Timeline
    from repro.obs.metrics import MetricsRegistry

__all__ = ["JobCost", "ResourceCost", "Attribution", "attribute"]

#: Relative tolerance for the busy-vs-attributed reconciliation: the two
#: sides sum identical float durations in different orders, so they can
#: differ by accumulated rounding but never by a real amount.
_RECONCILE_REL_EPS = 1e-9


@dataclass
class JobCost:
    """One job's attributed resource-seconds, by phase."""

    job_id: str
    stage_s: float = 0.0
    compute_s: float = 0.0
    collective_s: float = 0.0
    resume_s: float = 0.0
    recovery_s: float = 0.0
    #: Queueing delay of this job's collectives (seconds the gang spent
    #: ready but blocked behind other traffic on its links/NICs), counted
    #: once per gang window rather than once per participating resource.
    nic_wait_s: float = 0.0

    @property
    def busy_s(self) -> float:
        """Total attributed resource-seconds across all phases."""
        return (
            self.stage_s
            + self.compute_s
            + self.collective_s
            + self.resume_s
            + self.recovery_s
        )

    @property
    def preemption_overhead_s(self) -> float:
        """Resource-seconds spent re-establishing state after interruption."""
        return self.resume_s + self.recovery_s


@dataclass
class ResourceCost:
    """One resource's busy seconds, split by who claims them."""

    key: str
    category: str
    busy_s: float = 0.0  # the resource's own accumulator (ground truth)
    attributed_s: float = 0.0  # busy seconds carried by some job's span
    untagged_s: float = 0.0  # busy seconds with no span (untagged bookings)
    untagged_bookings: int = 0
    wait_s: float = 0.0  # accumulated queueing delay (start - ready)

    @property
    def gap_s(self) -> float:
        """Busy seconds the split fails to explain (should be ~0)."""
        return self.busy_s - self.attributed_s - self.untagged_s

    @property
    def reconciles(self) -> bool:
        """Whether attributed + untagged reproduces ``busy_s`` exactly
        (up to float summation-order noise)."""
        return abs(self.gap_s) <= _RECONCILE_REL_EPS * max(self.busy_s, 1.0)


@dataclass
class Attribution:
    """The folded trace: job costs, resource splits, reconciliation."""

    jobs: Dict[str, JobCost] = field(default_factory=dict)
    resources: Dict[str, ResourceCost] = field(default_factory=dict)

    @property
    def gap_count(self) -> int:
        """Resources whose busy seconds do not reconcile (target: 0)."""
        return sum(1 for r in self.resources.values() if not r.reconciles)

    @property
    def untagged_busy_count(self) -> int:
        """Busy bookings carrying no span anywhere on the timeline."""
        return sum(r.untagged_bookings for r in self.resources.values())

    def phase_totals(self) -> Dict[str, float]:
        """Attributed resource-seconds summed over jobs, by phase."""
        totals = {
            "stage": 0.0,
            "compute": 0.0,
            "collective": 0.0,
            "resume": 0.0,
            "recovery": 0.0,
            "nic_wait": 0.0,
        }
        for job in self.jobs.values():
            totals["stage"] += job.stage_s
            totals["compute"] += job.compute_s
            totals["collective"] += job.collective_s
            totals["resume"] += job.resume_s
            totals["recovery"] += job.recovery_s
            totals["nic_wait"] += job.nic_wait_s
        return totals

    def publish(self, registry: "MetricsRegistry") -> None:
        """Publish the breakdown into a metrics registry."""
        phase_seconds = registry.counter(
            "repro_attributed_seconds_total",
            "Attributed resource-seconds across jobs, by phase",
            ("phase",),
        )
        for phase, seconds in self.phase_totals().items():
            phase_seconds.inc(seconds, phase=phase)
        registry.gauge(
            "repro_attribution_gap_resources",
            "Resources whose busy seconds failed to reconcile with spans",
        ).set(self.gap_count)
        wait = registry.counter(
            "repro_resource_wait_seconds_total",
            "Queueing delay accumulated per resource category",
            ("category",),
        )
        for key in sorted(self.resources):
            cost = self.resources[key]
            wait.inc(cost.wait_s, category=cost.category or "uncategorized")


def attribute(timeline: "Timeline") -> Attribution:
    """Fold ``timeline``'s trace into an :class:`Attribution`.

    Only ``busy=True`` bookings carry cost (reservations hold a resource
    without doing work, exactly as in ``Resource.busy_s``).  Per-phase
    job costs are resource-seconds; ``nic_wait_s`` is counted once per
    collective gang window — every member of a gang records the same
    queueing delay, so the per-member copies are de-duplicated on
    ``(job, label, window)``.
    """
    result = Attribution()
    for resource in timeline.resources:
        cost = ResourceCost(
            key=resource.key,
            category=resource.category,
            busy_s=resource.busy_s,
            wait_s=resource.wait_s,
        )
        result.resources[resource.key] = cost
        for booking in resource.bookings:
            if not booking.busy:
                continue
            span = booking.span
            if span is None:
                cost.untagged_s += booking.duration_s
                cost.untagged_bookings += 1
                continue
            cost.attributed_s += booking.duration_s
            job = result.jobs.get(span.job_id)
            if job is None:
                job = result.jobs[span.job_id] = JobCost(job_id=span.job_id)
            if span.phase == "stage":
                job.stage_s += booking.duration_s
            elif span.phase == "collective":
                job.collective_s += booking.duration_s
            elif span.phase == "resume":
                job.resume_s += booking.duration_s
            elif span.phase == "recovery":
                job.recovery_s += booking.duration_s
            else:  # "compute" and untagged-phase spans: the default bucket
                job.compute_s += booking.duration_s

    # NIC wait: one gang window = one wait, not one per member.
    seen: Set[Tuple[str, str, float, float]] = set()
    for booking in timeline.events:
        span = booking.span
        if span is None or span.phase != "collective" or not booking.busy:
            continue
        window = (span.job_id, booking.label, booking.start_s, booking.end_s)
        if window in seen:
            continue
        seen.add(window)
        result.jobs[span.job_id].nic_wait_s += booking.wait_s

    # Deterministic iteration for every consumer: order jobs by id.
    result.jobs = dict(sorted(result.jobs.items()))
    return result
