"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The measurement substrate for ROADMAP item 5 (closed-loop scheduling):
every layer that models time — kernels, streamed/sharded drivers, the
decomposition algorithms, the serving scheduler, the autoscaler — can
publish what it observed into one :class:`MetricsRegistry`, carried on
:class:`~repro.context.ExecContext` and surfaced by ``python -m repro
serve --metrics out.prom``.

Unlike a production metrics client, nothing here reads a wall clock:
every recorded value is either an event count or *simulated* seconds from
the :mod:`repro.gpusim.timeline` engine.  That makes the whole registry
deterministic — two runs with the same seed produce byte-identical
Prometheus text and JSON exports, which is what lets the benchmark
regression gate diff telemetry like any other modeled metric:

* metric families render in registration order (the program's publish
  order, which is deterministic);
* label sets within a family render in sorted label order;
* floats render via ``repr`` (shortest round-trip form — no locale, no
  precision drift).

The exposition format follows the Prometheus text format (``# HELP`` /
``# TYPE`` headers, ``name{label="value"} value`` samples, histogram
``_bucket``/``_sum``/``_count`` series with cumulative ``le`` buckets) so
the files are scrapeable by standard tooling, but the writer is
deliberately minimal — no timestamps, no exemplars.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "KERNEL_SECONDS_BUCKETS",
    "observe_kernel",
    "observe_kernel_profile",
    "observe_decomposition",
]

LabelKey = Tuple[Tuple[str, str], ...]

#: Fixed histogram buckets for modeled kernel/job durations (seconds).
#: Fixed — never derived from observed data — so bucket boundaries cannot
#: drift between runs and histograms stay byte-comparable.
KERNEL_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
    120.0,
)


def _format_value(value: float) -> str:
    """Render a sample value deterministically.

    Integer-valued samples render as integers (``40`` not ``40.0``);
    everything else uses ``repr``, Python's shortest round-trip float
    form.  ``+Inf``/``-Inf`` follow the Prometheus spelling.
    """
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


class _Metric:
    """Shared name/help/label plumbing of the three metric kinds."""

    kind = ""

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names

    def _key(self, labels: Mapping[str, str]) -> LabelKey:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter(_Metric):
    """A monotonically increasing count (events, jobs, chunks, bytes)."""

    kind = "counter"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be non-negative) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {amount}")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count of the labelled series (0 when never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def _samples(self) -> Iterable[Tuple[str, str]]:
        for key in sorted(self._values):
            yield self.name + _render_labels(key), _format_value(self._values[key])

    def _json_value(self) -> object:
        return {_render_labels(key) or "": self._values[key] for key in sorted(self._values)}


class Gauge(_Metric):
    """A point-in-time value (active devices, queue depth, utilization)."""

    kind = "gauge"

    def __init__(self, name: str, help: str, label_names: Tuple[str, ...]) -> None:
        super().__init__(name, help, label_names)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value`` (overwrites)."""
        self._values[self._key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 when never set)."""
        return self._values.get(self._key(labels), 0.0)

    def _samples(self) -> Iterable[Tuple[str, str]]:
        for key in sorted(self._values):
            yield self.name + _render_labels(key), _format_value(self._values[key])

    def _json_value(self) -> object:
        return {_render_labels(key) or "": self._values[key] for key in sorted(self._values)}


class Histogram(_Metric):
    """A fixed-bucket distribution (modeled seconds, sizes).

    Buckets are fixed at registration so two runs always histogram into
    identical boundaries.  Exposition is cumulative (Prometheus ``le``
    convention) with the implicit ``+Inf`` bucket, plus ``_sum`` and
    ``_count`` series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} needs strictly increasing buckets, got {buckets}"
            )
        self.buckets = bounds
        # per label set: [count per finite bucket..., +Inf count], sum
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation of ``value`` into the labelled series."""
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def count(self, **labels: str) -> int:
        """Total observations of the labelled series."""
        return sum(self._counts.get(self._key(labels), ()))

    def sum(self, **labels: str) -> float:
        """Sum of observed values of the labelled series."""
        return self._sums.get(self._key(labels), 0.0)

    def _samples(self) -> Iterable[Tuple[str, str]]:
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for bound, n in zip(self.buckets, counts):
                cumulative += n
                le = ("le", _format_value(bound))
                yield (
                    self.name + "_bucket" + _render_labels(key, (le,)),
                    str(cumulative),
                )
            cumulative += counts[-1]
            yield (
                self.name + "_bucket" + _render_labels(key, (("le", "+Inf"),)),
                str(cumulative),
            )
            yield self.name + "_sum" + _render_labels(key), _format_value(self._sums[key])
            yield self.name + "_count" + _render_labels(key), str(cumulative)

    def _json_value(self) -> object:
        out: Dict[str, object] = {}
        for key in sorted(self._counts):
            out[_render_labels(key) or ""] = {
                "buckets": list(self.buckets),
                "counts": list(self._counts[key]),
                "sum": self._sums[key],
                "count": sum(self._counts[key]),
            }
        return out


class MetricsRegistry:
    """The one registry a run publishes into.

    Metric families are created on first use and type-checked on re-use
    (asking for an existing name with a different kind, labels, or
    buckets raises — two layers silently publishing incompatible series
    under one name is always a bug).  Export order is registration order.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is None:
            self._metrics[metric.name] = metric
            return metric
        if existing.kind != metric.kind or existing.label_names != metric.label_names:
            raise ValueError(
                f"metric {metric.name!r} already registered as a "
                f"{existing.kind} with labels {existing.label_names}"
            )
        if isinstance(metric, Histogram) and isinstance(existing, Histogram):
            if existing.buckets != metric.buckets:
                raise ValueError(
                    f"histogram {metric.name!r} already registered with "
                    f"buckets {existing.buckets}"
                )
        return existing

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        metric = self._register(Counter(name, help, tuple(labels)))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        metric = self._register(Gauge(name, help, tuple(labels)))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        *,
        buckets: Sequence[float] = KERNEL_SECONDS_BUCKETS,
    ) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        metric = self._register(Histogram(name, help, tuple(labels), buckets))
        assert isinstance(metric, Histogram)
        return metric

    @property
    def metrics(self) -> Tuple[str, ...]:
        """Registered family names, in registration order."""
        return tuple(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        """The family registered under ``name`` (``None`` when absent)."""
        return self._metrics.get(name)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample, value in metric._samples():
                lines.append(f"{sample} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, object]:
        """The registry as one JSON-serialisable dict."""
        return {
            metric.name: {
                "kind": metric.kind,
                "help": metric.help,
                "values": metric._json_value(),
            }
            for metric in self._metrics.values()
        }

    def write_prometheus(self, path: str) -> None:
        """Write :meth:`to_prometheus` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_prometheus())

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=1, sort_keys=False)
            handle.write("\n")


def observe_kernel(
    registry: MetricsRegistry,
    *,
    kernel: str,
    path: str,
    nnz: int,
    seconds: float,
) -> None:
    """Publish one unified-kernel launch into ``registry``.

    The shared instrumentation point of the three unified kernels:
    ``kernel`` names the operation (``spttm``/``spmttkrp``/``spttmc``),
    ``path`` the execution strategy chosen (``one-shot``/``streamed``/
    ``sharded``), ``seconds`` the modeled execution time.
    """
    labels = ("kernel", "path")
    registry.counter(
        "repro_kernel_launches_total",
        "Unified kernel launches by operation and execution path",
        labels,
    ).inc(kernel=kernel, path=path)
    registry.counter(
        "repro_kernel_nnz_total",
        "Non-zeros processed by unified kernel launches",
        labels,
    ).inc(nnz, kernel=kernel, path=path)
    registry.histogram(
        "repro_kernel_seconds",
        "Modeled execution seconds per unified kernel launch",
        labels,
        buckets=KERNEL_SECONDS_BUCKETS,
    ).observe(seconds, kernel=kernel, path=path)


def observe_kernel_profile(
    registry: MetricsRegistry, *, kernel: str, nnz: int, profile: object
) -> None:
    """Publish one launch from its :class:`~repro.gpusim.timing.KernelProfile`.

    The single instrumentation call the three unified kernels make: the
    execution path is read off the profile itself (``profile.sharded`` →
    the multi-GPU driver ran, ``profile.streaming`` → the out-of-core
    driver, neither → one-shot), and the drivers' own ledgers supply the
    chunk/shard fan-out counters — so driver-level telemetry needs no
    extra plumbing through the driver signatures.
    """
    sharded = getattr(profile, "sharded", None)
    streaming = getattr(profile, "streaming", None)
    if sharded is not None:
        path = "sharded"
    elif streaming is not None:
        path = "streamed"
    else:
        path = "one-shot"
    observe_kernel(
        registry,
        kernel=kernel,
        path=path,
        nnz=nnz,
        seconds=float(getattr(profile, "estimated_time_s", 0.0)),
    )
    if streaming is not None:
        registry.counter(
            "repro_stream_chunks_total",
            "Chunks executed by the out-of-core streamed driver",
            ("kernel",),
        ).inc(streaming.num_chunks, kernel=kernel)
    if sharded is not None:
        registry.counter(
            "repro_shards_total",
            "Device shards executed by the multi-GPU sharded driver",
            ("kernel",),
        ).inc(sharded.num_shards, kernel=kernel)
        # Streamed shards carry their own chunk ledgers.
        chunk_total = sum(
            shard.streaming.num_chunks
            for shard in sharded.shards
            if getattr(shard, "streaming", None) is not None
        )
        if chunk_total:
            registry.counter(
                "repro_stream_chunks_total",
                "Chunks executed by the out-of-core streamed driver",
                ("kernel",),
            ).inc(chunk_total, kernel=kernel)


def observe_decomposition(
    registry: MetricsRegistry,
    *,
    algorithm: str,
    iterations: int,
    makespan_s: float,
    recoveries: int = 0,
    recovery_overhead_s: float = 0.0,
) -> None:
    """Publish one decomposition run (CP-ALS / Tucker-HOOI)."""
    labels = ("algorithm",)
    registry.counter(
        "repro_decomposition_runs_total",
        "Decomposition driver runs",
        labels,
    ).inc(algorithm=algorithm)
    registry.counter(
        "repro_decomposition_iterations_total",
        "ALS/HOOI sweeps executed across decomposition runs",
        labels,
    ).inc(iterations, algorithm=algorithm)
    registry.histogram(
        "repro_decomposition_seconds",
        "Modeled makespan per decomposition run",
        labels,
        buckets=KERNEL_SECONDS_BUCKETS,
    ).observe(makespan_s, algorithm=algorithm)
    if recoveries:
        registry.counter(
            "repro_decomposition_recoveries_total",
            "Node-loss recoveries survived by decomposition runs",
            labels,
        ).inc(recoveries, algorithm=algorithm)
        registry.counter(
            "repro_decomposition_recovery_seconds_total",
            "Modeled re-staging seconds spent recovering from node loss",
            labels,
        ).inc(recovery_overhead_s, algorithm=algorithm)
