"""The pluggable numeric-execution backend interface.

The unified kernels' *numeric cores* — the code that actually computes the
per-segment sums the GPU simulator prices — are expressed in terms of a
small set of primitives:

* :meth:`Backend.slice_products` — per-non-zero scaled Hadamard partials
  (SpMTTKRP / SpTTM);
* :meth:`Backend.kron_products` — per-non-zero Kronecker partials (SpTTMc);
* :meth:`Backend.segment_reduce` — sum the partials within each F-COO
  segment;
* the fused compositions :meth:`Backend.hadamard_segment_sums` /
  :meth:`Backend.kron_segment_sums`, which a backend may override to avoid
  materialising the full per-non-zero partial array;
* the dense-update helpers :meth:`Backend.gram`,
  :meth:`Backend.dense_hadamard` and :meth:`Backend.matmul` used by the
  CP-ALS / Tucker drivers.

The contract every backend must honour is **bit-identity**: for any input,
a backend's result must be ``np.array_equal`` to the reference backend's
(:mod:`repro.backends.reference`, the strictly sequential ``np.add.at``
path).  All the repository's correctness claims are bit-identity properties
(chunked == sharded == multi-node == scheduled == recovered == one-shot),
so a backend that preserves bit-identity inherits every one of those proofs
for free.  ``tests/test_backends.py`` is the property harness;
``repro.bench.wallclock`` gates ``backend_identity_violation_count == 0``
in CI.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.gpusim.scan import validate_segment_inputs

__all__ = ["Backend"]


class Backend:
    """Abstract numeric-execution backend.

    Subclasses implement :meth:`segment_reduce`, :meth:`slice_products`,
    :meth:`kron_products` and :meth:`dense_hadamard`; the fused
    compositions and the dense helpers have default implementations here.
    """

    #: Registry name (``ExecContext(backend="<name>")`` / ``REPRO_BACKEND``).
    name: str = "abstract"

    # ------------------------------------------------------------------ #
    # Segment reduction
    # ------------------------------------------------------------------ #
    def segment_reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Sum ``values`` within each segment, in the canonical order.

        Must be bit-identical to
        :func:`repro.gpusim.scan.segment_reduce` — the strictly
        sequential per-element accumulation order — for non-decreasing
        ``segment_ids`` (the F-COO encoding guarantees monotonicity; an
        implementation may fall back to the scatter-add for unsorted ids).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Per-non-zero products
    # ------------------------------------------------------------------ #
    def slice_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Per-non-zero scaled Hadamard partials ``v_i · Π_p M_p[r_p[i], :]``.

        ``mats`` are the product-mode factors and ``rows`` the matching
        per-non-zero row-index streams; the result has shape ``(nnz, R)``.
        The multiplication association must be left-to-right (value first,
        then each factor in product-mode order) — that is the order the
        reference path uses and what bit-identity is defined against.
        """
        raise NotImplementedError

    def kron_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        """Per-non-zero scaled Kronecker partials, shape ``(nnz, Π R_p)``.

        Built from the last product mode outward so earlier modes vary
        fastest (the Kolda unfolding convention the oracles use).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Fused product + reduction (what the kernels' numeric cores call)
    # ------------------------------------------------------------------ #
    def hadamard_segment_sums(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Per-segment sums of the scaled Hadamard partials.

        Default: materialise :meth:`slice_products`, then
        :meth:`segment_reduce`.  Backends may fuse the two (compute each
        partial directly into its accumulator) as long as the per-element
        operation order — and hence the bits — is unchanged.
        """
        return self.segment_reduce(
            self.slice_products(values, mats, rows), segment_ids, num_segments
        )

    def kron_segment_sums(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Per-segment sums of the scaled Kronecker partials."""
        return self.segment_reduce(
            self.kron_products(values, mats, rows), segment_ids, num_segments
        )

    # ------------------------------------------------------------------ #
    # Dense updates (CP-ALS / Tucker drivers)
    # ------------------------------------------------------------------ #
    def gram(self, matrix: np.ndarray) -> np.ndarray:
        """The Gram matrix ``Mᵀ M`` of a factor."""
        return matrix.T @ matrix

    def dense_hadamard(self, grams: Sequence[np.ndarray], rank: int) -> np.ndarray:
        """Elementwise product of the Gram matrices (CP-ALS's ``V``)."""
        raise NotImplementedError

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Dense matrix product (Tucker's core projection)."""
        return a @ b

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _validated(
        values: np.ndarray, segment_ids: np.ndarray, num_segments: int
    ) -> tuple:
        """The shared input contract of :meth:`segment_reduce`."""
        return validate_segment_inputs(values, segment_ids, num_segments)

    @staticmethod
    def _empty_product(values: np.ndarray) -> np.ndarray:
        """Partials for a product over zero modes: the values themselves."""
        return np.asarray(values, dtype=np.float64)[:, None].copy()

    @staticmethod
    def _as_streams(rows: Sequence[np.ndarray]) -> List[np.ndarray]:
        return [np.asarray(r) for r in rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
