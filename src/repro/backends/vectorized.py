"""The vectorized backend: batched strict-order reductions, fused products.

``np.add.at`` is semantically perfect for the F-COO segment reduction — a
strictly sequential scatter-add — but notoriously slow (~10 ns per scalar
element: it is implemented as a per-index interpreter loop).  The obvious
replacement, ``np.add.reduceat``, is *not* an option under this
repository's bit-identity regime: reduceat uses pairwise summation, which
diverges from the sequential order from segment length 4 onward.

This backend instead performs the reduction as a **position-stepped
batch**: sort the segments by length (descending, stable), then for
within-segment position ``k = 0, 1, 2, …`` add the ``k``-th element of
every still-active segment into its accumulator row with one vectorized
``+=``.  Each segment's elements are accumulated strictly in stream order
— exactly ``np.add.at``'s association — but the interpreter loop runs once
per *position* (bounded by the longest segment), not once per *non-zero*.
When only a few long segments remain active (the skewed-tail regime where
position stepping degenerates), the survivors finish with a seeded
``np.add.accumulate`` — numpy's cumulative sum is strictly sequential, so
the association is again unchanged.

The product stage fuses into the same loop: each position's partial
products are computed directly into the accumulator batch (value row ×
gathered factor rows, left-to-right), so the full ``(nnz, R)`` partial
array is never materialised.  Per element the scalar operations and their
order are identical to the reference path — only the batching changes —
which is why the outputs are bit-identical, not merely close.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.gpusim.scan import segment_reduce as _canonical_segment_reduce

__all__ = ["VectorizedBackend"]


def _segment_table(segment_ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Start offsets and lengths of the runs in non-decreasing segment ids."""
    n = segment_ids.shape[0]
    starts = np.flatnonzero(np.r_[True, segment_ids[1:] != segment_ids[:-1]])
    lengths = np.diff(np.r_[starts, n])
    return starts, lengths


class VectorizedBackend(Backend):
    """Batched strict-order execution; bit-identical to the reference."""

    name = "vectorized"

    # ------------------------------------------------------------------ #
    # Segment reduction
    # ------------------------------------------------------------------ #
    def segment_reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        values, segment_ids, num_segments = self._validated(
            values, segment_ids, num_segments
        )
        squeeze = values.ndim == 1
        if values.shape[0] == 0:
            shape = (num_segments,) if squeeze else (num_segments, values.shape[1])
            return np.zeros(shape, dtype=np.float64)
        if np.any(segment_ids[1:] < segment_ids[:-1]):
            # Unsorted ids (never produced by F-COO encodings): the batched
            # stepping needs contiguous runs, so take the canonical
            # scatter-add — identical by definition.
            return _canonical_segment_reduce(values, segment_ids, num_segments)
        values2d = values[:, None] if squeeze else values
        out = self._strict_sorted_reduce(values2d, segment_ids, num_segments)
        return out[:, 0] if squeeze else out

    def _strict_sorted_reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        """Position-stepped reduction of pre-computed ``(n, w)`` partials."""
        starts, lengths = _segment_table(segment_ids)
        order = np.argsort(-lengths, kind="stable")
        s_starts, s_len = starts[order], lengths[order]
        acc = values[s_starts].copy()  # every segment's position-0 element
        max_len = int(s_len[0])
        k = 1
        while k < max_len:
            m = int(np.searchsorted(-s_len, -k))  # segments with length > k
            if m <= 0:
                break
            if m <= max_len - k:
                # Few long segments left: finish each with a seeded
                # cumulative sum (np.add.accumulate is strictly sequential).
                for i in range(m):
                    lo = int(s_starts[i]) + k
                    hi = int(s_starts[i]) + int(s_len[i])
                    seeded = np.concatenate([acc[i][None, :], values[lo:hi]], axis=0)
                    acc[i] = np.add.accumulate(seeded, axis=0)[-1]
                break
            acc[:m] += values[s_starts[:m] + k]
            k += 1
        out = np.zeros((num_segments, values.shape[1]), dtype=np.float64)
        out[segment_ids[s_starts]] = acc
        return out

    # ------------------------------------------------------------------ #
    # Per-non-zero products
    # ------------------------------------------------------------------ #
    def slice_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        if not mats:
            return self._empty_product(values)
        rows = self._as_streams(rows)
        # In-place chain: per element the same left-to-right pairing as the
        # reference's `partial = partial * mat[rows]`, one temporary fewer.
        partial = np.asarray(values, dtype=np.float64)[:, None] * mats[0][rows[0], :]
        for mat, row_idx in zip(mats[1:], rows[1:]):
            partial *= mat[row_idx, :]
        return partial

    def kron_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        vals = np.asarray(values, dtype=np.float64)
        if not mats:
            return vals[:, None].copy()
        rows = self._as_streams(rows)
        nnz = vals.shape[0]
        if nnz == 0:
            width = 1
            for mat in mats:
                width *= mat.shape[1]
            return np.zeros((0, width), dtype=np.float64)
        if len(mats) == 2:
            # One fused pass; operands multiply left-to-right — the same
            # (value · last-mode row) · first-mode row pairing as the loop.
            # (einsum's `optimize=` must stay off: path optimisation
            # re-associates the products and breaks bit-identity.)
            a = mats[0][rows[0], :]
            b = mats[1][rows[1], :]
            return np.einsum("i,ib,ia->iba", vals, b, a).reshape(nnz, -1)
        partial = vals[:, None]
        for pos in range(len(mats) - 1, -1, -1):
            picked = mats[pos][rows[pos], :]
            partial = (partial[:, :, None] * picked[:, None, :]).reshape(nnz, -1)
        return partial

    # ------------------------------------------------------------------ #
    # Fused product + reduction
    # ------------------------------------------------------------------ #
    def hadamard_segment_sums(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        vals = np.asarray(values, dtype=np.float64)
        segment_ids = np.asarray(segment_ids)
        if (
            not mats
            or vals.shape[0] == 0
            or np.any(segment_ids[1:] < segment_ids[:-1])
        ):
            return super().hadamard_segment_sums(
                vals, mats, rows, segment_ids, num_segments
            )
        _, segment_ids, num_segments = self._validated(
            vals, segment_ids, num_segments
        )
        rows = self._as_streams(rows)
        starts, lengths = _segment_table(segment_ids)
        order = np.argsort(-lengths, kind="stable")
        s_starts, s_len = starts[order], lengths[order]

        def step(indexer) -> np.ndarray:
            """One position's partial products, gathered and multiplied
            in the reference's left-to-right order."""
            partial = vals[indexer, None] * mats[0][rows[0][indexer], :]
            for mat, row_idx in zip(mats[1:], rows[1:]):
                partial *= mat[row_idx[indexer], :]
            return partial

        acc = step(s_starts)
        max_len = int(s_len[0])
        k = 1
        while k < max_len:
            m = int(np.searchsorted(-s_len, -k))
            if m <= 0:
                break
            if m <= max_len - k:
                for i in range(m):
                    lo = int(s_starts[i]) + k
                    hi = int(s_starts[i]) + int(s_len[i])
                    seeded = np.concatenate(
                        [acc[i][None, :], step(slice(lo, hi))], axis=0
                    )
                    acc[i] = np.add.accumulate(seeded, axis=0)[-1]
                break
            acc[:m] += step(s_starts[:m] + k)
            k += 1
        out = np.zeros((num_segments, acc.shape[1]), dtype=np.float64)
        out[segment_ids[s_starts]] = acc
        return out

    # ------------------------------------------------------------------ #
    # Dense updates
    # ------------------------------------------------------------------ #
    def dense_hadamard(self, grams: Sequence[np.ndarray], rank: int) -> np.ndarray:
        if not grams:
            return np.ones((rank, rank), dtype=np.float64)
        # 1.0 * x == x exactly in IEEE-754, so dropping the reference's
        # np.ones seed and chaining from the first Gram is bit-identical.
        out = np.array(grams[0], dtype=np.float64, copy=True)
        for gram in grams[1:]:
            out *= gram
        return out


def _self_check(seed: int = 0, n: int = 512, width: int = 4) -> Optional[str]:
    """Quick import-safe sanity probe used by tests; None when healthy."""
    rng = np.random.default_rng(seed)
    seg = np.sort(rng.integers(0, 40, size=n))
    vals = rng.standard_normal((n, width))
    from repro.backends.reference import ReferenceBackend

    ref = ReferenceBackend().segment_reduce(vals, seg, 41)
    vec = VectorizedBackend().segment_reduce(vals, seg, 41)
    if not np.array_equal(ref, vec):
        return "vectorized segment_reduce diverged from the reference order"
    return None
