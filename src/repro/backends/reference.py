"""The reference backend: the repository's original interpreted numpy path.

This is the *definition* of correctness for every other backend: a strictly
sequential ``np.add.at`` scatter-add for the segment reduction and plain
left-to-right array products for the per-non-zero partials — exactly the
code the unified kernels ran before the backend interface existed.  It is
deliberately unclever; its job is to be obviously equivalent to a serial
loop over the non-zero stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backends.base import Backend
from repro.gpusim.scan import segment_reduce as _canonical_segment_reduce

__all__ = ["ReferenceBackend"]


class ReferenceBackend(Backend):
    """Strictly sequential numpy execution (the canonical numeric order)."""

    name = "reference"

    def segment_reduce(
        self,
        values: np.ndarray,
        segment_ids: np.ndarray,
        num_segments: int,
    ) -> np.ndarray:
        return _canonical_segment_reduce(values, segment_ids, num_segments)

    def slice_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        partial = np.asarray(values, dtype=np.float64)[:, None]
        for mat, row_idx in zip(mats, rows):
            partial = partial * mat[np.asarray(row_idx), :]
        return partial

    def kron_products(
        self,
        values: np.ndarray,
        mats: Sequence[np.ndarray],
        rows: Sequence[np.ndarray],
    ) -> np.ndarray:
        nnz = np.asarray(values).shape[0]
        if nnz == 0 and mats:
            # reshape(0, -1) is ill-defined; build the empty result directly.
            width = 1
            for mat in mats:
                width *= mat.shape[1]
            return np.zeros((0, width), dtype=np.float64)
        partial = np.asarray(values, dtype=np.float64)[:, None]
        for pos in range(len(mats) - 1, -1, -1):
            picked = mats[pos][np.asarray(rows[pos]), :]
            partial = (partial[:, :, None] * picked[:, None, :]).reshape(nnz, -1)
        return partial

    def dense_hadamard(self, grams: Sequence[np.ndarray], rank: int) -> np.ndarray:
        v = np.ones((rank, rank), dtype=np.float64)
        for gram in grams:
            v *= gram
        return v
