"""Pluggable numeric-execution backends for the unified kernels.

A :class:`~repro.backends.base.Backend` supplies the numeric primitives the
unified kernels are written against (segment reduction, per-non-zero
products, dense CP/Tucker updates).  Two implementations ship:

* ``"reference"`` — the original strictly-sequential numpy path
  (``np.add.at`` + per-mode product loops).  This *defines* the
  repository's canonical numeric order.
* ``"vectorized"`` — batched position-stepped reductions with fused
  products; bit-identical to the reference by construction, ≥2× faster on
  realistic workloads (see ``repro.bench.wallclock``).

Selection, in precedence order:

1. ``ExecContext(backend="vectorized")`` (or a :class:`Backend` instance);
2. the ``REPRO_BACKEND`` environment variable (read at call time, which is
   what the CI backend-matrix axis and the CLI ``--backend`` flag set);
3. the default, ``"reference"``.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from repro.backends.base import Backend
from repro.backends.reference import ReferenceBackend
from repro.backends.vectorized import VectorizedBackend

__all__ = [
    "Backend",
    "ReferenceBackend",
    "VectorizedBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "available_backends",
    "get_backend",
]

#: Environment variable consulted when no backend is given explicitly.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: Name used when neither an explicit spec nor the environment selects one.
DEFAULT_BACKEND = "reference"

#: Singleton registry; backends are stateless so instances are shared.
BACKENDS: Dict[str, Backend] = {
    ReferenceBackend.name: ReferenceBackend(),
    VectorizedBackend.name: VectorizedBackend(),
}


def available_backends() -> tuple:
    """Registered backend names, in registration order."""
    return tuple(BACKENDS)


def get_backend(spec: Optional[Union[str, Backend]] = None) -> Backend:
    """Resolve a backend spec to a :class:`Backend` instance.

    ``None`` consults ``REPRO_BACKEND`` (defaulting to ``"reference"``), a
    string is looked up in the registry, and a :class:`Backend` instance
    passes through unchanged.
    """
    if isinstance(spec, Backend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
    if not isinstance(spec, str):
        raise TypeError(
            f"backend must be a name or a Backend instance, got {type(spec).__name__}"
        )
    try:
        return BACKENDS[spec]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ValueError(f"unknown backend {spec!r} (available: {known})") from None
