"""Sparse tensor operation kernels.

Three families of kernels are provided, all numerically verified against the
dense oracles in :mod:`repro.tensor.ops`:

* :mod:`repro.kernels.reference` — straightforward COO implementations with
  no performance model; the ground truth used by the test suite.
* :mod:`repro.kernels.unified` — the paper's contribution: F-COO based
  SpTTM, one-shot SpMTTKRP and SpTTMc with segmented-scan reduction,
  read-only-cache factor access and kernel fusion, executed against the
  simulated GPU of :mod:`repro.gpusim`.
* :mod:`repro.kernels.baselines` — the comparison points of the evaluation:
  ParTI-GPU (fiber-parallel SpTTM; two-step COO SpMTTKRP with atomics),
  ParTI-omp (the same algorithms on the multicore CPU model) and SPLATT's
  CSF-based CPU MTTKRP.
"""

from repro.kernels.common import SpTTMResult, MTTKRPResult, TTMcResult

__all__ = ["SpTTMResult", "MTTKRPResult", "TTMcResult"]
