"""Reference sparse kernels (correctness oracles, no performance model)."""

from repro.kernels.reference.coo_reference import (
    reference_spttm,
    reference_mttkrp,
    reference_ttmc,
)

__all__ = ["reference_spttm", "reference_mttkrp", "reference_ttmc"]
