"""Straightforward COO implementations of SpTTM, SpMTTKRP and SpTTMc.

These operate directly on :class:`repro.tensor.SparseTensor` coordinates with
vectorised NumPy and no cost accounting.  They scale to the synthetic dataset
sizes used in the benchmarks (unlike the dense oracles in
:mod:`repro.tensor.ops`, which require densifying the tensor) and serve as an
intermediate correctness tier: the dense oracle validates these on small
tensors, and these validate the simulated kernels on large ones.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.formats.semisparse import SemiSparseTensor
from repro.tensor.sparse import SparseTensor
from repro.kernels.common import validate_factor
from repro.util.validation import check_mode

__all__ = ["reference_spttm", "reference_mttkrp", "reference_ttmc"]


def reference_spttm(tensor: SparseTensor, matrix: np.ndarray, mode: int) -> SemiSparseTensor:
    """COO reference SpTTM: ``Y = X ×_mode U`` as a semi-sparse tensor.

    The output keeps one dense fiber (of length ``R``, the column count of
    ``U``) per non-empty mode-``mode`` fiber of the input.
    """
    mode = check_mode(mode, tensor.order)
    matrix = validate_factor(matrix, tensor.shape[mode], "matrix")
    rank = matrix.shape[1]
    out_shape = list(tensor.shape)
    out_shape[mode] = rank

    other = [m for m in range(tensor.order) if m != mode]
    if tensor.nnz == 0:
        return SemiSparseTensor(
            shape=tuple(out_shape),
            dense_mode=mode,
            fiber_coords=np.empty((0, tensor.order - 1), dtype=np.int64),
            fiber_values=np.empty((0, rank), dtype=np.float64),
        )

    idx = np.asarray(tensor.indices)
    other_coords = idx[:, other]
    # Identify fibers: unique rows of the non-product coordinates.
    uniq, inverse = np.unique(other_coords, axis=0, return_inverse=True)
    partial = np.asarray(tensor.values)[:, None] * matrix[idx[:, mode], :]
    fiber_values = np.zeros((uniq.shape[0], rank), dtype=np.float64)
    np.add.at(fiber_values, inverse, partial)
    return SemiSparseTensor(
        shape=tuple(out_shape),
        dense_mode=mode,
        fiber_coords=uniq.astype(np.int64),
        fiber_values=fiber_values,
    )


def reference_mttkrp(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """COO reference MTTKRP along ``mode`` for a tensor of any order.

    ``factors`` holds one matrix per mode (the one at ``mode`` is ignored);
    the result has shape ``(shape[mode], R)``.
    """
    mode = check_mode(mode, tensor.order)
    if len(factors) != tensor.order:
        raise ValueError(f"need one factor per mode ({tensor.order}), got {len(factors)}")
    other = [m for m in range(tensor.order) if m != mode]
    ranks = {np.asarray(factors[m]).shape[1] for m in other}
    if len(ranks) != 1:
        raise ValueError(f"all factors must share one rank, got {sorted(ranks)}")
    rank = ranks.pop()
    mats = [validate_factor(factors[m], tensor.shape[m], f"factors[{m}]") for m in other]

    out = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    if tensor.nnz == 0:
        return out
    idx = np.asarray(tensor.indices)
    partial = np.asarray(tensor.values)[:, None] * np.ones((1, rank))
    for m, mat in zip(other, mats):
        partial = partial * mat[idx[:, m], :]
    np.add.at(out, idx[:, mode], partial)
    return out


def reference_ttmc(
    tensor: SparseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """COO reference TTMc along ``mode`` (the Tucker kernel, Equation 4).

    Returns the mode-``mode`` unfolding of ``X ×_{m != mode} U_m``, of shape
    ``(shape[mode], prod_{m != mode} R_m)``.  The Kronecker row ordering
    matches :func:`repro.tensor.ops.ttmc_dense`.
    """
    mode = check_mode(mode, tensor.order)
    if len(factors) != tensor.order:
        raise ValueError(f"need one factor per mode ({tensor.order}), got {len(factors)}")
    other = [m for m in range(tensor.order) if m != mode]
    mats = [validate_factor(factors[m], tensor.shape[m], f"factors[{m}]") for m in other]
    out_cols = 1
    for mat in mats:
        out_cols *= mat.shape[1]
    out = np.zeros((tensor.shape[mode], out_cols), dtype=np.float64)
    if tensor.nnz == 0:
        return out

    idx = np.asarray(tensor.indices)
    # Build the per-non-zero Kronecker product of the selected factor rows.
    # The unfolding convention has earlier modes varying fastest, so the
    # Kronecker chain is built from the *last* remaining mode outward.
    partial = np.asarray(tensor.values)[:, None]
    for m, mat in zip(reversed(other), reversed(mats)):
        rows = mat[idx[:, m], :]
        partial = (partial[:, :, None] * rows[:, None, :]).reshape(tensor.nnz, -1)
    np.add.at(out, idx[:, mode], partial)
    return out
