"""SPLATT's CSF-based CPU MTTKRP (Smith et al., IPDPS 2015).

SPLATT is the strongest CPU baseline in the paper: it stores the tensor as a
compressed sparse fiber (CSF) tree and exploits fiber-level factorisation to
save floating-point work.  For the MTTKRP whose output mode is the tree's
root the classic two-level loop applies (third-order, root ``i``):

    for each root slice i (parallel across threads):
        for each fiber (i, j):
            tmp(:)   = Σ_k  X(i, j, k) · C(k, :)        # leaf accumulation
            M(i, :) += tmp(:) ∗ B(j, :)                  # fiber combination

which performs ``2·R·(nnz + nfibers)`` FLOPs instead of the ``~4·R·nnz`` of
the COO formulation.  When the requested output mode is *not* the tree root
SPLATT walks the same tree but loses the factorisation benefit for the lower
levels and — more importantly for "oddly shaped" tensors like brainq — its
outer parallel loop is still over root slices, whose count and balance now
have nothing to do with the output mode.  This is the mode sensitivity
Figure 7(b) shows.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cpusim.cpu import CPU_I7_5820K, CpuCounters, CpuSpec, cpu_profile
from repro.formats.csf import CSFTensor
from repro.gpusim.device import TITAN_X
from repro.gpusim.memory import readonly_cache_traffic
from repro.kernels.common import MTTKRPResult, chunked_imbalance, validate_factor
from repro.kernels.reference.coo_reference import reference_mttkrp
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["splatt_mttkrp", "splatt_csf_mode_order"]


def splatt_csf_mode_order(tensor: SparseTensor, root_mode: int) -> tuple:
    """SPLATT's level ordering: the root mode first, then the others by size.

    SPLATT sorts the non-root levels so the shortest modes sit near the root,
    which maximises fiber compression.
    """
    root_mode = check_mode(root_mode, tensor.order)
    others = sorted(
        (m for m in range(tensor.order) if m != root_mode),
        key=lambda m: tensor.shape[m],
    )
    return (root_mode, *others)


def splatt_mttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    cpu: CpuSpec = CPU_I7_5820K,
    num_threads: Optional[int] = None,
    csf: Optional[CSFTensor] = None,
    csf_root_mode: Optional[int] = None,
) -> MTTKRPResult:
    """CSF-based MTTKRP on the multicore CPU model (the SPLATT baseline).

    Parameters
    ----------
    tensor:
        The sparse input tensor.
    factors:
        One dense factor per mode (the entry at ``mode`` is ignored).
    mode:
        Output mode.
    cpu, num_threads:
        CPU model and thread count (the paper uses 12 threads).
    csf:
        A pre-built CSF tree to reuse (SPLATT builds its trees once per
        tensor, not once per MTTKRP); when omitted a tree rooted at
        ``csf_root_mode`` (default: ``mode``) is built.
    csf_root_mode:
        Root mode of the tree when ``csf`` is not supplied.  CP-ALS reuses
        one tree for all three MTTKRPs, so modes other than the root pay the
        penalty described in the module docstring.
    """
    mode = check_mode(mode, tensor.order)
    order = tensor.order
    if len(factors) != order:
        raise ValueError(f"need one factor per mode ({order}), got {len(factors)}")
    product_modes = [m for m in range(order) if m != mode]
    mats = {
        m: validate_factor(factors[m], tensor.shape[m], f"factors[{m}]") for m in product_modes
    }
    rank = next(iter(mats.values())).shape[1]

    if csf is None:
        root = check_mode(csf_root_mode if csf_root_mode is not None else mode, order)
        csf = CSFTensor.from_sparse(tensor, splatt_csf_mode_order(tensor, root))
    root_mode = csf.mode_order[0]

    # Numerical result (independent of the traversal order).
    output = reference_mttkrp(tensor, factors, mode)

    nnz = tensor.nnz
    threads = num_threads if num_threads is not None else cpu.threads
    num_root_slices = csf.level_size(0)
    # Work per root slice = leaves underneath it; drives the load balance of
    # the OpenMP loop over root slices.
    root_slice_nnz = tensor.slice_counts(root_mode)

    counters = CpuCounters()
    # CSF storage streamed once: fids of every level + fptr + values.
    counters.mem_read_bytes = float(csf.storage_bytes())
    operated_on_root = mode == root_mode

    if operated_on_root:
        # Fiber factorisation applies: one leaf pass + one fiber pass.
        num_fibers = csf.level_size(order - 2) if order >= 2 else nnz
        counters.flops = 2.0 * rank * (nnz + num_fibers)
        # SPLATT's inner loops are hand-tuned and mostly vectorised; charge a
        # light scalar overhead for the tree walk.
        counters.scalar_ops = 2.5 * rank * (nnz + num_fibers)
        leaf_mode = csf.mode_order[-1]
        counters.mem_read_bytes += _llc_factor_bytes(
            np.asarray(tensor.mode_indices(leaf_mode)), rank, cpu
        )
        # The fiber-level factor is read once per fiber (good locality).
        counters.mem_read_bytes += num_fibers * rank * 4.0
    else:
        # Non-root output mode: no factorisation benefit, every non-zero
        # multiplies all product-mode rows, and the accumulation targets are
        # scattered (per-thread buffers are used to avoid locks, which costs
        # an extra output-sized reduction).
        counters.flops = 2.0 * rank * nnz * max(len(product_modes), 1)
        # Without the factorisation the per-non-zero work doubles and the
        # scattered accumulation defeats vectorisation.
        counters.scalar_ops = 4.0 * rank * nnz
        for m in product_modes:
            counters.mem_read_bytes += _llc_factor_bytes(
                np.asarray(tensor.mode_indices(m)), rank, cpu
            )
        counters.mem_write_bytes += min(threads, cpu.threads) * tensor.shape[mode] * rank * 4.0

    counters.mem_write_bytes += tensor.shape[mode] * rank * 4.0
    counters.parallel_fraction = 0.97
    counters.used_threads = max(min(threads, num_root_slices), 1)
    counters.imbalance_factor = (
        chunked_imbalance(root_slice_nnz, threads) if num_root_slices else 1.0
    )

    profile = cpu_profile(
        f"splatt-mttkrp-mode{mode}", counters, cpu, num_threads=threads
    )
    return MTTKRPResult(output=output, profile=profile)


def _llc_factor_bytes(row_indices: np.ndarray, rank: int, cpu: CpuSpec) -> float:
    """DRAM bytes for factor-row gathers after last-level-cache reuse."""
    traffic = readonly_cache_traffic(
        row_indices, rank * 4.0, TITAN_X, cache_bytes=float(cpu.llc_bytes)
    )
    return traffic.dram_bytes
