"""Baseline implementations the paper compares against.

* :mod:`repro.kernels.baselines.parti_gpu` — ParTI!'s GPU kernels:
  fiber-parallel SpTTM (Li et al., IA^3 2016) and the two-step COO
  SpMTTKRP with atomic updates and an intermediate semi-sparse tensor.
* :mod:`repro.kernels.baselines.parti_omp` — the same algorithms on the
  multicore CPU model (the "ParTI-omp" bars of Figure 6).
* :mod:`repro.kernels.baselines.splatt` — SPLATT's CSF-based CPU MTTKRP
  (Smith et al., IPDPS 2015), the strongest CPU baseline and the comparison
  point for the CP decomposition (Figure 10).
"""

from repro.kernels.baselines.parti_gpu import parti_gpu_spttm, parti_gpu_spmttkrp
from repro.kernels.baselines.parti_omp import parti_omp_spttm, parti_omp_spmttkrp
from repro.kernels.baselines.splatt import splatt_mttkrp

__all__ = [
    "parti_gpu_spttm",
    "parti_gpu_spmttkrp",
    "parti_omp_spttm",
    "parti_omp_spmttkrp",
    "splatt_mttkrp",
]
