"""ParTI!'s OpenMP CPU kernels (the "ParTI-omp" bars of Figure 6).

The algorithms mirror the GPU versions — fiber-centric SpTTM and two-step
COO SpMTTKRP with an intermediate semi-sparse tensor — executed by 12
OpenMP threads on the CPU model of :mod:`repro.cpusim`.  Parallelisation is
over slices of the output mode (each thread owns a contiguous block of
slices so no atomics are needed), which is why the CPU variant's load
balance depends on the slice-size distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.cpusim.cpu import CPU_I7_5820K, CpuCounters, CpuSpec, cpu_profile
from repro.gpusim.device import TITAN_X
from repro.gpusim.memory import readonly_cache_traffic
from repro.kernels.common import MTTKRPResult, SpTTMResult, chunked_imbalance, validate_factor
from repro.kernels.reference.coo_reference import reference_mttkrp, reference_spttm
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["parti_omp_spttm", "parti_omp_spmttkrp"]


def _llc_factor_bytes(row_indices: np.ndarray, rank: int, cpu: CpuSpec) -> float:
    """DRAM bytes for factor-row gathers after last-level-cache reuse.

    Reuses the GPU cache model with the CPU's LLC capacity; the transaction
    granularity difference (64-byte CPU lines vs 128-byte GPU lines) is a
    second-order effect for row sizes of 32–256 bytes.
    """
    traffic = readonly_cache_traffic(
        row_indices, rank * 4.0, TITAN_X, cache_bytes=float(cpu.llc_bytes)
    )
    return traffic.dram_bytes


def parti_omp_spttm(
    tensor: SparseTensor,
    matrix: np.ndarray,
    mode: int,
    *,
    cpu: CpuSpec = CPU_I7_5820K,
    num_threads: Optional[int] = None,
) -> SpTTMResult:
    """Fiber-centric SpTTM on the multicore CPU model (ParTI-omp)."""
    mode = check_mode(mode, tensor.order)
    matrix = validate_factor(matrix, tensor.shape[mode], "matrix")
    rank = matrix.shape[1]

    output = reference_spttm(tensor, matrix, mode)

    nnz = tensor.nnz
    fiber_nnz = tensor.fiber_counts(mode)
    nfibs = int(fiber_nnz.shape[0])
    threads = num_threads if num_threads is not None else cpu.threads

    counters = CpuCounters()
    counters.flops = 2.0 * nnz * rank
    # ParTI's CPU SpTTM walks fibers with a scalar inner loop (index load,
    # bounds check, multiply-add per column); ~6 scalar ops per non-zero per
    # column.
    counters.scalar_ops = 6.0 * nnz * rank
    counters.mem_read_bytes = nnz * 8.0  # product-mode index + value
    counters.mem_read_bytes += nfibs * tensor.order * 4.0  # fiber metadata
    counters.mem_read_bytes += _llc_factor_bytes(
        np.asarray(tensor.mode_indices(mode)), rank, cpu
    )
    counters.mem_write_bytes = nfibs * rank * 4.0
    counters.parallel_fraction = 0.98
    counters.used_threads = max(min(threads, nfibs), 1)
    # Fibers are statically chunked across threads; a thread's time is the
    # sum of its chunk, so the imbalance follows the chunk sums.
    counters.imbalance_factor = chunked_imbalance(fiber_nnz, threads) if nfibs else 1.0

    profile = cpu_profile(
        f"parti-omp-spttm-mode{mode}", counters, cpu, num_threads=threads
    )
    return SpTTMResult(output=output, profile=profile)


def parti_omp_spmttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    cpu: CpuSpec = CPU_I7_5820K,
    num_threads: Optional[int] = None,
) -> MTTKRPResult:
    """Two-step COO SpMTTKRP on the multicore CPU model (ParTI-omp)."""
    mode = check_mode(mode, tensor.order)
    order = tensor.order
    if len(factors) != order:
        raise ValueError(f"need one factor per mode ({order}), got {len(factors)}")
    product_modes = [m for m in range(order) if m != mode]
    mats = {
        m: validate_factor(factors[m], tensor.shape[m], f"factors[{m}]") for m in product_modes
    }
    rank = next(iter(mats.values())).shape[1]

    output = reference_mttkrp(tensor, factors, mode)

    nnz = tensor.nnz
    threads = num_threads if num_threads is not None else cpu.threads
    last_product = product_modes[-1]
    intermediate_fibers = tensor.num_fibers(last_product) if nnz else 0
    slice_nnz = tensor.slice_counts(mode)
    num_slices = int(slice_nnz.shape[0])

    counters = CpuCounters()
    # Step 1: read the COO tensor + last factor, write the intermediate.
    counters.mem_read_bytes = nnz * (order + 1) * 4.0
    counters.mem_read_bytes += _llc_factor_bytes(
        np.asarray(tensor.mode_indices(last_product)), rank, cpu
    )
    counters.mem_write_bytes = intermediate_fibers * rank * 4.0
    # Step 2: read the intermediate + remaining factors, write the output.
    counters.mem_read_bytes += intermediate_fibers * (rank + order - 1) * 4.0
    for m in product_modes:
        if m == last_product:
            continue
        counters.mem_read_bytes += _llc_factor_bytes(
            np.asarray(tensor.mode_indices(m)), rank, cpu
        )
    counters.mem_write_bytes += tensor.shape[mode] * rank * 4.0

    counters.flops = 2.0 * nnz * rank + 2.0 * intermediate_fibers * rank * max(
        len(product_modes) - 1, 1
    )
    # ParTI's COO MTTKRP reconstructs the unfolded column index with an
    # integer division and modulo per non-zero per column (Equation 6), on
    # top of the gather and multiply-add: ~12 scalar ops per non-zero per
    # column in step 1 plus ~4 per intermediate fiber per column in step 2.
    counters.scalar_ops = 12.0 * nnz * rank + 4.0 * intermediate_fibers * rank
    counters.parallel_fraction = 0.97
    counters.used_threads = max(min(threads, num_slices), 1) if num_slices else 1
    counters.imbalance_factor = chunked_imbalance(slice_nnz, threads) if num_slices else 1.0

    profile = cpu_profile(
        f"parti-omp-spmttkrp-mode{mode}", counters, cpu, num_threads=threads
    )
    return MTTKRPResult(output=output, profile=profile)
