"""ParTI!'s GPU kernels (the paper's GPU baseline).

Two kernels are reproduced, following the descriptions in the paper's
Sections III-B and V and in Li et al. (IA^3 2016):

* :func:`parti_gpu_spttm` — *fiber-parallel* SpTTM.  Work is partitioned by
  output fiber: a two-dimensional thread block assigns one x-lane per fiber
  and spreads the rank across the y dimension, so the exposed parallelism
  equals the number of non-empty fibers (540 for mode-2 of brainq!) and a
  lane's work equals its fiber's length — the source of the load imbalance,
  warp divergence and mode sensitivity the paper criticises.  The thread
  block shape depends on the rank, which degrades coalescing as the rank
  grows (Figure 8).

* :func:`parti_gpu_spmttkrp` — COO SpMTTKRP.  ParTI parallelises over
  non-zeros but (i) reads all mode indices of every non-zero (COO), (ii)
  materialises the intermediate semi-sparse tensor of the two-step
  formulation (Figure 3a), and (iii) resolves write conflicts with atomic
  additions into the output rows, which serialise heavily because every
  output row receives one update per non-zero of its slice.  The
  intermediate tensor is also what makes ParTI run out of device memory on
  the large tensors (Section V-A, Figure 9).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.formats.coo import COOTensor
from repro.gpusim.atomics import atomic_cost_ops
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.memory import AccessPattern, coalesced_traffic_bytes, readonly_cache_traffic
from repro.gpusim.timing import check_device_fit, profile_from_counters
from repro.kernels.common import MTTKRPResult, SpTTMResult, validate_factor, warp_group_imbalance
from repro.kernels.reference.coo_reference import reference_spttm
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["parti_gpu_spttm", "parti_gpu_spmttkrp"]

#: Extra work factor ParTI's rank-dependent 2-D thread blocks pay per unit of
#: rank growth: warp divergence plus strided accesses when the block shape
#: changes with the rank (paper Section IV-D).  Calibrated so the rank sweep
#: of Figure 8 grows at roughly the reported rate.
_RANK_DIVERGENCE_SLOPE = 1.0 / 32.0


def parti_gpu_spttm(
    tensor: SparseTensor,
    matrix: np.ndarray,
    mode: int,
    *,
    device: DeviceSpec = TITAN_X,
    block_size: int = 512,
) -> SpTTMResult:
    """Fiber-parallel SpTTM as implemented in ParTI! on GPUs.

    Numerically identical to the unified kernel; the profile reflects the
    fiber-centric execution.
    """
    mode = check_mode(mode, tensor.order)
    matrix = validate_factor(matrix, tensor.shape[mode], "matrix")
    rank = matrix.shape[1]

    output = reference_spttm(tensor, matrix, mode)

    fiber_nnz = tensor.fiber_counts(mode)
    nfibs = int(fiber_nnz.shape[0])
    nnz = tensor.nnz

    # Thread-block layout: (block_size / rank) fibers per block along x,
    # rank along y.  Grid covers all fibers.
    fibers_per_block = max(block_size // max(rank, 1), 1)
    grid_x = max(-(-nfibs // fibers_per_block), 1)
    launch = LaunchConfig(block_size=block_size, grid_x=grid_x, grid_y=1, threadlen=1)

    counters = KernelCounters()
    # Tensor reads: each lane walks its own fiber, so consecutive lanes read
    # addresses a fiber apart — random gathers of (index + value) pairs with
    # a contiguous run equal to the fiber length.
    mean_fiber = float(fiber_nnz.mean()) if nfibs else 0.0
    counters.gmem_read_bytes += coalesced_traffic_bytes(
        nnz,
        8,
        AccessPattern.RANDOM,
        device,
        contiguous_run_bytes=max(mean_fiber * 8.0, 8.0),
    )
    # Fiber metadata (sCOO-style coordinates and fiber pointers).
    counters.gmem_read_bytes += nfibs * (tensor.order - 1 + 1) * 4.0
    # Factor rows: the y-threads of a block read consecutive columns of the
    # same row, which coalesces well; reuse only through the L2 (ParTI does
    # not route these loads through the read-only cache).
    factor_traffic = readonly_cache_traffic(
        np.asarray(tensor.mode_indices(mode)),
        rank * 4.0,
        device,
        cache_bytes=float(device.l2_bytes),
    )
    counters.gmem_read_bytes += factor_traffic.dram_bytes
    # Output fibers written once each, coalesced.
    counters.gmem_write_bytes += nfibs * rank * 4.0
    counters.flops += 2.0 * nnz * rank
    counters.kernel_launches += 1
    counters.active_threads = float(max(nfibs * rank, 1))
    # Load imbalance: lanes of a warp own different fibers and wait for the
    # longest one; additionally the rank-dependent block shape causes
    # divergence that grows with the rank.
    lanes_per_warp = max(device.warp_size // max(min(rank, device.warp_size), 1), 1)
    imbalance = warp_group_imbalance(fiber_nnz, lanes_per_warp)
    rank_penalty = 1.0 + _RANK_DIVERGENCE_SLOPE * rank
    counters.imbalance_factor = float(imbalance * rank_penalty)

    footprint = (
        COOTensor.from_sparse(tensor, sort_mode=mode).storage_bytes()
        + matrix.shape[0] * rank * 4.0
        + output.storage_bytes()
    )
    profile = profile_from_counters(
        f"parti-gpu-spttm-mode{mode}",
        counters,
        launch,
        device,
        device_memory_bytes=footprint,
    )
    return SpTTMResult(output=output, profile=profile)


def parti_gpu_spmttkrp(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    device: DeviceSpec = TITAN_X,
    block_size: int = 256,
) -> MTTKRPResult:
    """Two-step COO SpMTTKRP with atomic updates, as in ParTI! on GPUs.

    Step 1 multiplies along the last product mode producing the intermediate
    semi-sparse tensor ``Y`` (Figure 3a); step 2 multiplies ``Y`` by the
    remaining factor and atomically accumulates into the output rows.

    Raises
    ------
    repro.gpusim.OutOfDeviceMemory
        When the COO tensor plus the intermediate tensor do not fit in
        device memory — the failure the paper reports for nell1/delicious.
    """
    mode = check_mode(mode, tensor.order)
    order = tensor.order
    if len(factors) != order:
        raise ValueError(f"need one factor per mode ({order}), got {len(factors)}")
    product_modes = [m for m in range(order) if m != mode]
    mats = {
        m: validate_factor(factors[m], tensor.shape[m], f"factors[{m}]") for m in product_modes
    }
    ranks = {mat.shape[1] for mat in mats.values()}
    if len(ranks) != 1:
        raise ValueError(f"product-mode factors must share one rank, got {sorted(ranks)}")
    rank = ranks.pop()

    nnz = tensor.nnz
    # ParTI uses 64-bit index types on the GPU (its linearised fiber indices
    # overflow 32 bits on the large tensors), which is part of why its
    # footprint exceeds device memory on nell1/delicious (Figure 9).
    coo = COOTensor.from_sparse(tensor, sort_mode=mode, index_dtype=np.uint64)

    # ------------------------------------------------------------------ #
    # Footprint / OOM check first: COO + factors + intermediate + output.
    # ------------------------------------------------------------------ #
    last_product = product_modes[-1]
    intermediate_fibers = tensor.num_fibers(last_product) if nnz else 0
    intermediate_bytes = intermediate_fibers * (rank * 4.0 + (order - 1) * 8.0)
    factor_bytes = sum(tensor.shape[m] * rank * 4.0 for m in product_modes)
    output_bytes = tensor.shape[mode] * rank * 4.0
    footprint = coo.storage_bytes() + factor_bytes + intermediate_bytes + output_bytes
    check_device_fit(footprint, device, what=f"ParTI-GPU SpMTTKRP on mode {mode}")

    # ------------------------------------------------------------------ #
    # Numerical result via the two-step formulation (matches the one-shot
    # result exactly; verified in the tests).
    # ------------------------------------------------------------------ #
    output = np.zeros((tensor.shape[mode], rank), dtype=np.float64)
    idx = np.asarray(tensor.indices)
    values = np.asarray(tensor.values)
    if nnz:
        # Step 1: partial = X ×_{last_product} U_last  (kept fiber-wise).
        other = [m for m in range(order) if m != last_product]
        fiber_keys, fiber_inverse = np.unique(idx[:, other], axis=0, return_inverse=True)
        step1 = values[:, None] * mats[last_product][idx[:, last_product], :]
        intermediate = np.zeros((fiber_keys.shape[0], rank), dtype=np.float64)
        np.add.at(intermediate, fiber_inverse, step1)
        # Step 2: multiply by the remaining product-mode factors and
        # accumulate into the output mode rows.
        partial = intermediate
        out_pos = other.index(mode)
        for m in product_modes:
            if m == last_product:
                continue
            pos = other.index(m)
            partial = partial * mats[m][fiber_keys[:, pos], :]
        np.add.at(output, fiber_keys[:, out_pos], partial)

    # ------------------------------------------------------------------ #
    # Simulated cost: two kernels, intermediate round trip, atomics.
    # ------------------------------------------------------------------ #
    launch = LaunchConfig.for_nnz(max(nnz, 1), rank, block_size=block_size, threadlen=1)

    counters = KernelCounters()
    # Step 1 reads the full COO (64-bit indices + value) and the last factor.
    counters.gmem_read_bytes += coalesced_traffic_bytes(
        nnz, order * 8 + 4, AccessPattern.COALESCED, device
    )
    counters.gmem_read_bytes += readonly_cache_traffic(
        idx[:, last_product] if nnz else np.empty(0, dtype=np.int64),
        rank * 4.0,
        device,
        cache_bytes=float(device.l2_bytes),
    ).dram_bytes
    # Step 1 resolves collisions on the intermediate fibers with atomics and
    # writes the intermediate tensor.
    if nnz:
        fiber_update_counts = np.bincount(fiber_inverse)
        counters.atomic_ops += float(nnz) * rank
        counters.atomic_serialized_ops += atomic_cost_ops(
            float(nnz) * rank, fiber_update_counts, device
        )
    counters.gmem_write_bytes += intermediate_bytes

    # Step 2 reads the intermediate back, reads the remaining factors and
    # atomically accumulates into the output rows.
    counters.gmem_read_bytes += intermediate_bytes
    counters.kernel_launches += 0
    if nnz:
        for m in product_modes:
            if m == last_product:
                continue
            counters.gmem_read_bytes += readonly_cache_traffic(
                fiber_keys[:, other.index(m)],
                rank * 4.0,
                device,
                cache_bytes=float(device.l2_bytes),
            ).dram_bytes
        slice_update_counts = np.bincount(fiber_keys[:, out_pos])
        n_step2_atomics = float(fiber_keys.shape[0]) * rank
        counters.atomic_ops += n_step2_atomics
        counters.atomic_serialized_ops += atomic_cost_ops(
            n_step2_atomics, slice_update_counts[slice_update_counts > 0], device
        )
    counters.gmem_write_bytes += output_bytes

    counters.flops += 2.0 * nnz * rank * max(len(product_modes), 1)
    counters.kernel_launches += 2
    counters.active_threads = float(max(nnz, 1))
    counters.imbalance_factor = 1.0

    profile = profile_from_counters(
        f"parti-gpu-spmttkrp-mode{mode}",
        counters,
        launch,
        device,
        device_memory_bytes=footprint,
    )
    return MTTKRPResult(output=output, profile=profile)
