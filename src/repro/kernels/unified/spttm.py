"""Unified SpTTM: sparse tensor-times-matrix on the F-COO format.

Computes ``Y = X ×_mode U`` (paper Equation 3) where ``X`` is sparse and
``U`` dense.  The result is semi-sparse: one dense fiber of length ``R`` per
non-empty fiber of ``X`` along ``mode``.

Algorithm (paper Section IV-D, Figure 4):

* the tensor is F-COO encoded for SpTTM on ``mode`` — product-mode indices
  (``mode`` itself) stored, the other modes compressed to the bit-flag;
* every thread takes ``threadlen`` consecutive non-zeros and multiplies each
  value by the factor row ``U[k, :]`` fetched through the read-only cache;
* a segmented scan over the bit-flags reduces the partial fibers, and the
  per-fiber results are written out coalesced;
* everything runs in one fused kernel launch — no intermediate data.

Tensors whose F-COO footprint exceeds device memory execute out-of-core via
:mod:`repro.kernels.unified.streaming` (automatically, or on request with
``streamed=True``): the non-zero stream is chunked on ``threadlen``-aligned
boundaries, the per-chunk fiber partials merge by global segment id, and the
cost model overlaps each chunk's PCIe copy with the previous chunk's kernel.
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from repro.backends import Backend, get_backend
from repro.context import UNSET, ExecContext, resolve_context
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.formats.semisparse import SemiSparseTensor
from repro.gpusim.cluster import resolve_cluster
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timing import profile_from_counters
from repro.kernels.common import SpTTMResult, validate_factor
from repro.kernels.unified._model import (
    unified_device_footprint,
    unified_kernel_counters,
)
from repro.kernels.unified.sharded import sharded_unified_kernel
from repro.kernels.unified.streaming import should_stream, streamed_unified_kernel
from repro.obs.metrics import observe_kernel_profile
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["unified_spttm"]


def _fiber_values(fcoo: FCOOTensor, matrix: np.ndarray, backend: Backend):
    """Numeric core: per-fiber sums of ``value * U[k, :]`` plus the row stream."""
    product_idx = fcoo.product_mode_indices(0).astype(np.int64)
    sums = backend.hadamard_segment_sums(
        fcoo.values, [matrix], [product_idx], fcoo.segment_ids, fcoo.num_segments
    )
    return sums, product_idx


def unified_spttm(
    tensor: Union[SparseTensor, FCOOTensor],
    matrix: np.ndarray,
    mode: int,
    *,
    device: DeviceSpec = TITAN_X,
    block_size: int = 128,
    threadlen: int = 8,
    fused: bool = True,
    streamed: Any = UNSET,
    num_streams: Any = UNSET,
    chunk_nnz: Any = UNSET,
    cluster: Any = UNSET,
    devices: Any = UNSET,
    ctx: Optional[ExecContext] = None,
) -> SpTTMResult:
    """Compute SpTTM with the unified F-COO algorithm on the simulated GPU.

    Parameters
    ----------
    tensor:
        The sparse input, either as a :class:`SparseTensor` (encoded
        on the fly) or as an :class:`FCOOTensor` already encoded for SpTTM
        on ``mode`` (the CP/Tucker drivers pre-encode once per mode).
    matrix:
        Dense factor ``U`` of shape ``(I_mode, R)``.
    mode:
        Product mode (0-based).
    device:
        Simulated GPU.
    block_size, threadlen:
        The tunable launch parameters of Figure 5 / Table V.
    fused:
        Keep the product/scan/accumulate stages in one kernel (the unified
        default); ``False`` models the unfused variant for the ablation
        benchmark.
    ctx:
        The :class:`~repro.context.ExecContext` carrying the execution
        controls described below.
    streamed:
        ``None`` (default) auto-selects: one-shot when the operands fit in
        device memory, out-of-core streaming otherwise.  ``True`` forces
        streaming, ``False`` forces one-shot (raising
        :class:`~repro.gpusim.timing.OutOfDeviceMemory` when it does not
        fit).  An empty tensor always takes the one-shot path.
    num_streams:
        CUDA streams (in-flight chunk buffers) for the streamed path; 1
        disables the transfer/compute overlap.
    chunk_nnz:
        Non-zeros per streamed chunk (must be at least ``threadlen``;
        rounded down to a ``threadlen`` multiple); ``None`` sizes chunks to
        fill the device memory budget.
    cluster:
        Optional :class:`~repro.gpusim.cluster.ClusterSpec` or
        :class:`~repro.gpusim.cluster.MultiNodeClusterSpec`: the non-zero
        stream shards across its devices on ``threadlen``-aligned
        boundaries, each shard runs on its own device (falling back to the
        streamed path per-device when it does not fit); the semi-sparse
        output stays partitioned across the devices and only the fibers
        straddling a shard boundary exchange with a neighbour
        (``profile.sharded`` carries the per-device ledger).
    devices:
        Shorthand for ``cluster``: a device count > 1 builds a homogeneous
        cluster of ``device``.  Mutually consistent with ``cluster``.

    ``streamed`` / ``num_streams`` / ``chunk_nnz`` / ``cluster`` /
    ``devices`` as direct kwargs are deprecated aliases for the matching
    ``ctx`` fields: still honored (they override ``ctx``) but each warns
    once.

    Returns
    -------
    SpTTMResult
        The semi-sparse result and the simulated kernel profile
        (``profile.streaming`` holds the per-chunk ledger on the streamed
        path).
    """
    ctx = resolve_context(
        "unified_spttm",
        ctx,
        streamed=streamed,
        num_streams=num_streams,
        chunk_nnz=chunk_nnz,
        cluster=cluster,
        devices=devices,
    )
    streamed, num_streams, chunk_nnz = ctx.streamed, ctx.num_streams, ctx.chunk_nnz
    cluster, devices = ctx.cluster, ctx.devices
    backend_impl = get_backend(ctx.backend)
    if isinstance(tensor, FCOOTensor):
        fcoo = tensor
        if fcoo.operation is not OperationKind.SPTTM or fcoo.mode != check_mode(mode, fcoo.order):
            raise ValueError(
                f"the provided FCOOTensor is encoded for {fcoo.operation.value} on mode "
                f"{fcoo.mode}, not SpTTM on mode {mode}"
            )
    else:
        mode = check_mode(mode, tensor.order)
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPTTM, mode)

    shape = fcoo.shape
    matrix = validate_factor(matrix, shape[fcoo.mode], "matrix")
    rank = matrix.shape[1]

    out_shape = list(shape)
    out_shape[fcoo.mode] = rank

    # ------------------------------------------------------------------ #
    # Numerical result (what the GPU kernel would produce).
    # ------------------------------------------------------------------ #
    if fcoo.nnz == 0:
        output = SemiSparseTensor(
            shape=tuple(out_shape),
            dense_mode=fcoo.mode,
            fiber_coords=np.empty((0, fcoo.order - 1), dtype=np.int64),
            fiber_values=np.empty((0, rank), dtype=np.float64),
        )
        launch = LaunchConfig(block_size=block_size, grid_x=1, grid_y=rank, threadlen=threadlen)
        profile = profile_from_counters(
            f"unified-spttm-mode{fcoo.mode}",
            unified_kernel_counters(fcoo, [], rank, 0, rank, launch, device, fused=fused),
            launch,
            device,
        )
        if ctx.metrics is not None:
            observe_kernel_profile(ctx.metrics, kernel="spttm", nnz=0, profile=profile)
        return SpTTMResult(output=output, profile=profile)

    launch = LaunchConfig.for_nnz(fcoo.nnz, rank, block_size=block_size, threadlen=threadlen)
    factor_bytes = matrix.shape[0] * rank * 4.0
    output_bytes = fcoo.num_segments * rank * 4.0 + fcoo.num_segments * (fcoo.order - 1) * 4.0
    footprint = unified_device_footprint(fcoo, launch, factor_bytes, output_bytes)

    device, multi = resolve_cluster(device, cluster, devices)

    def numeric_core(chunk: FCOOTensor):
        sums, product_idx = _fiber_values(chunk, matrix, backend_impl)
        return sums, [product_idx]

    if multi is not None:
        # -------------------------------------------------------------- #
        # Multi-GPU path: shards reduce their own fibers in parallel; the
        # semi-sparse output stays partitioned across the devices (the
        # next pipeline stage consumes it in place) and only the fibers
        # straddling a shard boundary exchange with a neighbour.
        # -------------------------------------------------------------- #
        fiber_values, profile = sharded_unified_kernel(
            fcoo,
            numeric_core,
            rank=rank,
            output_width=rank,
            flops_per_nnz_per_column=2.0,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            cluster=multi,
            streamed=streamed,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=factor_bytes + output_bytes,
            output_bytes=output_bytes,
            name=f"unified-spttm-mode{fcoo.mode}",
            reduction="boundary",
        )
    elif should_stream(fcoo, footprint, device, streamed):
        # -------------------------------------------------------------- #
        # Out-of-core path: each chunk produces partial fiber sums for its
        # local segments; boundary-straddling fibers merge by segment id.
        # -------------------------------------------------------------- #
        fiber_values, profile = streamed_unified_kernel(
            fcoo,
            numeric_core,
            rank=rank,
            output_width=rank,
            flops_per_nnz_per_column=2.0,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            device=device,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=factor_bytes + output_bytes,
            name=f"unified-spttm-mode{fcoo.mode}",
        )
    else:
        fiber_values, product_idx = _fiber_values(fcoo, matrix, backend_impl)
        # ------------------------------------------------------------------ #
        # Simulated cost.
        # ------------------------------------------------------------------ #
        counters = unified_kernel_counters(
            fcoo,
            [product_idx],
            rank,
            output_rows=fcoo.num_segments,
            output_width=rank,
            launch=launch,
            device=device,
            flops_per_nnz_per_column=2.0,
            fused=fused,
        )
        profile = profile_from_counters(
            f"unified-spttm-mode{fcoo.mode}",
            counters,
            launch,
            device,
            device_memory_bytes=footprint,
        )

    output = SemiSparseTensor(
        shape=tuple(out_shape),
        dense_mode=fcoo.mode,
        fiber_coords=fcoo.segment_index_coords,
        fiber_values=fiber_values,
    )
    if ctx.metrics is not None:
        observe_kernel_profile(ctx.metrics, kernel="spttm", nnz=fcoo.nnz, profile=profile)
    return SpTTMResult(output=output, profile=profile)
