"""Unified SpTTMc: the tensor-times-matrix-chain kernel (paper Equation 4).

SpTTMc is the workhorse of the HOOI/Tucker decomposition: for target mode
``n`` it multiplies the tensor by every factor matrix except ``U_n`` along
the corresponding modes and returns the mode-``n`` unfolding of the result,

``Y_(n)(i, :) += X(i, j, k) · (U_2(j, :) ⊗ U_3(k, :))``  (third order, n=0).

Under the unified mode classification (Table I) SpTTMc looks exactly like
SpMTTKRP — product modes are all modes except ``n``, the index mode is ``n``
— except that the per-non-zero combination of factor rows is a Kronecker
product (output width ``Π R_m``) instead of a Hadamard product (width
``R``).  The same F-COO encoding, non-zero partitioning and segmented scan
therefore apply unchanged, which is precisely the unification the paper
claims.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import Backend, get_backend
from repro.context import UNSET, ExecContext, resolve_context
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import resolve_cluster
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timing import profile_from_counters
from repro.kernels.common import TTMcResult, validate_factor
from repro.kernels.unified._model import (
    unified_device_footprint,
    unified_kernel_counters,
)
from repro.kernels.unified.sharded import sharded_unified_kernel
from repro.kernels.unified.streaming import should_stream, streamed_unified_kernel
from repro.obs.metrics import observe_kernel_profile
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["unified_spttmc"]


def _kron_slice_sums(
    fcoo: FCOOTensor, mats: Sequence[np.ndarray], backend: Backend
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Numeric core: per-slice sums of the per-non-zero Kronecker products.

    Built from the last product mode outward so earlier modes vary fastest
    (matching the Kolda unfolding convention of the oracles).
    """
    row_streams: List[np.ndarray] = [
        fcoo.product_mode_indices(pos).astype(np.int64) for pos in range(len(mats))
    ]
    sums = backend.kron_segment_sums(
        fcoo.values, mats, row_streams, fcoo.segment_ids, fcoo.num_segments
    )
    return sums, row_streams


def unified_spttmc(
    tensor: Union[SparseTensor, FCOOTensor],
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    device: DeviceSpec = TITAN_X,
    block_size: int = 128,
    threadlen: int = 8,
    fused: bool = True,
    streamed: Any = UNSET,
    num_streams: Any = UNSET,
    chunk_nnz: Any = UNSET,
    cluster: Any = UNSET,
    devices: Any = UNSET,
    ctx: Optional[ExecContext] = None,
) -> TTMcResult:
    """Compute TTMc with the unified F-COO algorithm on the simulated GPU.

    Parameters
    ----------
    tensor:
        Sparse input tensor or a pre-encoded :class:`FCOOTensor` (the
        encoding is shared with SpMTTKRP — ``OperationKind.SPTTMC``).
    factors:
        One dense factor per mode (the entry at ``mode`` is ignored); factor
        ``m`` has shape ``(I_m, R_m)`` and the ranks may differ per mode.
    mode:
        Target mode whose unfolding is produced.
    ctx:
        The :class:`~repro.context.ExecContext` carrying the out-of-core
        (``streamed`` / ``num_streams`` / ``chunk_nnz``) and multi-GPU
        (``cluster`` / ``devices``) controls, as in
        :func:`repro.kernels.unified.spttm.unified_spttm` (the partial
        unfoldings merge through a modeled ring all-reduce).
    streamed, num_streams, chunk_nnz, cluster, devices:
        Deprecated aliases for the matching ``ctx`` fields; still honored
        (they override ``ctx``) but warn once per parameter.

    Returns
    -------
    TTMcResult
        The ``(I_mode, Π_{m != mode} R_m)`` unfolded result and the profile
        (``profile.streaming`` holds the per-chunk ledger on the streamed
        path).
    """
    ctx = resolve_context(
        "unified_spttmc",
        ctx,
        streamed=streamed,
        num_streams=num_streams,
        chunk_nnz=chunk_nnz,
        cluster=cluster,
        devices=devices,
    )
    streamed, num_streams, chunk_nnz = ctx.streamed, ctx.num_streams, ctx.chunk_nnz
    cluster, devices = ctx.cluster, ctx.devices
    backend_impl = get_backend(ctx.backend)
    if isinstance(tensor, FCOOTensor):
        fcoo = tensor
        if fcoo.operation not in (OperationKind.SPTTMC, OperationKind.SPMTTKRP) or (
            fcoo.mode != check_mode(mode, fcoo.order)
        ):
            raise ValueError(
                f"the provided FCOOTensor is encoded for {fcoo.operation.value} on mode "
                f"{fcoo.mode}, not SpTTMc on mode {mode}"
            )
    else:
        mode = check_mode(mode, tensor.order)
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPTTMC, mode)

    shape = fcoo.shape
    order = fcoo.order
    if len(factors) != order:
        raise ValueError(f"need one factor per mode ({order}), got {len(factors)}")
    product_modes = fcoo.roles.product_modes
    mats = [validate_factor(factors[m], shape[m], f"factors[{m}]") for m in product_modes]
    ranks = [m.shape[1] for m in mats]
    out_width = 1
    for r in ranks:
        out_width *= r

    output = np.zeros((shape[fcoo.mode], out_width), dtype=np.float64)
    launch = LaunchConfig.for_nnz(
        max(fcoo.nnz, 1), max(ranks), block_size=block_size, threadlen=threadlen
    )
    factor_bytes = sum(shape[m] * r * 4.0 for m, r in zip(product_modes, ranks))
    output_bytes = shape[fcoo.mode] * out_width * 4.0
    footprint = unified_device_footprint(fcoo, launch, factor_bytes, output_bytes)

    device, multi = resolve_cluster(device, cluster, devices)
    if multi is not None and fcoo.nnz:
        # -------------------------------------------------------------- #
        # Multi-GPU path: shards form their Kronecker slice sums in
        # parallel and the dense unfolding all-reduces across the cluster.
        # -------------------------------------------------------------- #
        slice_sums, profile = sharded_unified_kernel(
            fcoo,
            lambda chunk: _kron_slice_sums(chunk, mats, backend_impl),
            rank=max(ranks),
            output_width=out_width,
            flops_per_nnz_per_column=3.0,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            cluster=multi,
            streamed=streamed,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=factor_bytes + output_bytes,
            output_bytes=output_bytes,
            name=f"unified-spttmc-mode{fcoo.mode}",
            reduction="allreduce",
        )
        np.add.at(output, fcoo.segment_index_coords[:, 0], slice_sums)
        if ctx.metrics is not None:
            observe_kernel_profile(
                ctx.metrics, kernel="spttmc", nnz=fcoo.nnz, profile=profile
            )
        return TTMcResult(output=output, profile=profile)

    if should_stream(fcoo, footprint, device, streamed):
        # -------------------------------------------------------------- #
        # Out-of-core path: the Kronecker core runs chunk-by-chunk and the
        # per-chunk slice sums merge by global segment id.
        # -------------------------------------------------------------- #
        slice_sums, profile = streamed_unified_kernel(
            fcoo,
            lambda chunk: _kron_slice_sums(chunk, mats, backend_impl),
            rank=max(ranks),
            output_width=out_width,
            flops_per_nnz_per_column=3.0,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            device=device,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=factor_bytes + output_bytes,
            name=f"unified-spttmc-mode{fcoo.mode}",
        )
        np.add.at(output, fcoo.segment_index_coords[:, 0], slice_sums)
        if ctx.metrics is not None:
            observe_kernel_profile(
                ctx.metrics, kernel="spttmc", nnz=fcoo.nnz, profile=profile
            )
        return TTMcResult(output=output, profile=profile)

    row_streams: List[np.ndarray] = []
    if fcoo.nnz:
        # ------------------------------------------------------------------ #
        # Numerical result: per-non-zero Kronecker of the selected rows.
        # ------------------------------------------------------------------ #
        slice_sums, row_streams = _kron_slice_sums(fcoo, mats, backend_impl)
        out_rows = fcoo.segment_index_coords[:, 0]
        np.add.at(output, out_rows, slice_sums)

    # ------------------------------------------------------------------ #
    # Simulated cost: the Kronecker product performs one multiply per output
    # column plus the segmented add.
    # ------------------------------------------------------------------ #
    counters = unified_kernel_counters(
        fcoo,
        row_streams,
        max(ranks),
        output_rows=fcoo.num_segments,
        output_width=out_width,
        launch=launch,
        device=device,
        flops_per_nnz_per_column=3.0,
        fused=fused,
    )
    profile = profile_from_counters(
        f"unified-spttmc-mode{fcoo.mode}",
        counters,
        launch,
        device,
        device_memory_bytes=footprint,
    )
    if ctx.metrics is not None:
        observe_kernel_profile(
            ctx.metrics, kernel="spttmc", nnz=fcoo.nnz, profile=profile
        )
    return TTMcResult(output=output, profile=profile)
