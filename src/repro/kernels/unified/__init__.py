"""The unified F-COO kernels (the paper's contribution, Section IV).

All three kernels share the same skeleton:

1. every thread owns ``threadlen`` consecutive non-zeros of the F-COO
   encoded tensor (perfect load balance regardless of the sparsity
   structure);
2. each non-zero's product-mode indices select rows of the dense factor
   matrices (served by the read-only data cache) and a Hadamard (SpMTTKRP),
   Kronecker (SpTTMc) or scalar (SpTTM) product is formed and scaled by the
   non-zero value;
3. partial products are reduced into per-segment results (one per fiber or
   slice) by a warp-shuffle segmented scan driven by the F-COO bit-flags —
   no atomic updates except the per-block carries of the adjacent
   synchronisation scheme;
4. the product, scan and accumulation stages are fused into a single kernel
   launch so intermediate data never travels through global memory.

The kernels return numerically exact results (vectorised NumPy) together
with a :class:`repro.gpusim.KernelProfile` describing the simulated cost.

Tensors larger than device memory execute out-of-core
(:mod:`repro.kernels.unified.streaming`): the non-zero stream is chunked on
``threadlen``-aligned boundaries and pipelined through PCIe on multiple CUDA
streams, overlapping each chunk's copy with the previous chunk's kernel.

With a :class:`~repro.gpusim.cluster.ClusterSpec` (or ``devices=N``) the
same stream shards across a simulated multi-GPU node
(:mod:`repro.kernels.unified.sharded`): each shard runs on its own device —
streaming per-device when it still does not fit — and the partial outputs
merge through a modeled collective.
"""

from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttmc import unified_spttmc
from repro.kernels.unified.streaming import (
    ChunkLedger,
    StreamedExecution,
    choose_chunk_nnz,
    execute_streamed,
)
from repro.kernels.unified.sharded import (
    ShardLedger,
    ShardedExecution,
    execute_sharded,
    partition_shards,
    partition_shards_hierarchical,
)

__all__ = [
    "unified_spttm",
    "unified_spmttkrp",
    "unified_spttmc",
    "ChunkLedger",
    "StreamedExecution",
    "choose_chunk_nnz",
    "execute_streamed",
    "ShardLedger",
    "ShardedExecution",
    "execute_sharded",
    "partition_shards",
    "partition_shards_hierarchical",
]
