"""Out-of-core streamed execution of the unified kernels.

The one-shot unified kernels assume the whole F-COO encoding is resident in
device memory; when it is not, the paper partitions the non-zero stream,
double-buffers the partitions through PCIe on multiple CUDA streams, and
overlaps each partition's copy with the previous partition's kernel
(Section IV-D).  This module is the shared driver for that path:

* :func:`choose_chunk_nnz` sizes the partitions so that ``num_streams``
  in-flight chunk buffers plus the resident operands (factor matrices and
  the output) fit in device memory;
* :func:`execute_streamed` runs a kernel-specific per-chunk callable over
  the :meth:`~repro.formats.fcoo.FCOOTensor.chunk` partitioning, merges the
  per-chunk per-segment partial sums (cross-chunk segments merge by the
  global-segment-id mapping), resolves the transfer/compute pipeline by
  booking the chunks onto the device's copy/compute resources with
  :func:`repro.gpusim.timeline.schedule_chunks`, and assembles a
  :class:`~repro.gpusim.counters.KernelProfile` whose estimated time charges
  ``max(transfer, compute)`` per pipelined chunk instead of their sum.

The numeric outputs are identical (up to floating-point summation order) to
the one-shot kernels — ``tests/test_streaming.py`` is the property harness
proving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.counters import KernelCounters, KernelProfile
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timeline import ChunkTiming, StreamSchedule, Timeline, schedule_chunks
from repro.gpusim.timing import OutOfDeviceMemory, estimate_kernel_time
from repro.kernels.unified._model import unified_kernel_counters
from repro.util.validation import check_positive_int

__all__ = [
    "ChunkLedger",
    "StreamedExecution",
    "choose_chunk_nnz",
    "coerce_segment_sums",
    "execute_streamed",
    "should_stream",
    "streamed_unified_kernel",
]


def coerce_segment_sums(local_sums: np.ndarray, num_segments: int) -> np.ndarray:
    """Normalise a kernel's per-segment sums to a ``(num_segments, width)`` array.

    Width-1 results may arrive as a plain ``(num_segments,)`` vector; the
    segment axis is made explicit so callers merge rows, not columns.
    Shared by the streamed and sharded drivers.
    """
    local_sums = np.asarray(local_sums, dtype=np.float64)
    if local_sums.ndim == 1:
        local_sums = local_sums[:, None]
    elif local_sums.ndim != 2:
        raise ValueError(
            f"kernel must return (num_segments,) or (num_segments, width) "
            f"sums, got shape {local_sums.shape}"
        )
    if local_sums.shape[0] != num_segments:
        raise ValueError(
            f"kernel returned {local_sums.shape[0]} segment rows for "
            f"{num_segments} segments"
        )
    return local_sums

#: A per-chunk kernel: maps the chunk's own F-COO encoding to its local
#: per-segment partial sums ``(chunk.num_segments, width)``, the work ledger
#: of executing it, and the launch it would be issued with.
ChunkKernel = Callable[[FCOOTensor], Tuple[np.ndarray, KernelCounters, LaunchConfig]]

#: A kernel's numeric core: maps an F-COO encoding (the whole tensor or one
#: chunk) to its per-segment partial sums and the factor row-index streams.
NumericCore = Callable[[FCOOTensor], Tuple[np.ndarray, Sequence[np.ndarray]]]


def should_stream(
    fcoo: FCOOTensor,
    footprint: float,
    device: DeviceSpec,
    streamed: Optional[bool],
) -> bool:
    """The streamed/one-shot decision, shared by the kernels and CP engine.

    ``streamed=None`` auto-selects by comparing the one-shot device
    footprint against capacity; an explicit ``True``/``False`` wins.  An
    empty tensor always takes the one-shot path (there is nothing to
    stream).
    """
    if fcoo.nnz == 0:
        return False
    if streamed is not None:
        return bool(streamed)
    return footprint > device.global_mem_bytes


@dataclass(frozen=True)
class ChunkLedger:
    """Counter ledger of one streamed chunk.

    Attributes
    ----------
    index / start / stop:
        Position of the chunk in the non-zero stream.
    nnz / num_segments / carries_in:
        Chunk statistics (``carries_in`` marks a segment straddling the
        boundary with the previous chunk).
    transfer_bytes:
        Host-to-device bytes for the chunk's F-COO arrays.
    transfer_s / compute_s:
        Unoverlapped copy and kernel times of the chunk.
    counters:
        The chunk kernel's work ledger (PCIe traffic included).
    """

    index: int
    start: int
    stop: int
    nnz: int
    num_segments: int
    carries_in: bool
    transfer_bytes: float
    transfer_s: float
    compute_s: float
    counters: KernelCounters


@dataclass
class StreamedExecution:
    """Full ledger of one out-of-core kernel execution.

    Attributes
    ----------
    num_streams / chunk_nnz / threadlen:
        The streaming configuration actually used.
    chunks:
        One :class:`ChunkLedger` per executed chunk, in stream order.
    schedule:
        The resolved transfer/compute pipeline.
    """

    num_streams: int
    chunk_nnz: int
    threadlen: int
    chunks: List[ChunkLedger]
    schedule: StreamSchedule

    # ------------------------------------------------------------------ #
    @property
    def num_chunks(self) -> int:
        """Number of chunks the non-zero stream was split into."""
        return len(self.chunks)

    @property
    def total_time_s(self) -> float:
        """Pipelined makespan (what the kernel profile reports)."""
        return self.schedule.total_time_s

    @property
    def transfer_time_s(self) -> float:
        """Total unoverlapped transfer seconds."""
        return self.schedule.transfer_time_s

    @property
    def compute_time_s(self) -> float:
        """Total unoverlapped compute seconds."""
        return self.schedule.compute_time_s

    @property
    def transfer_bytes(self) -> float:
        """Total host-to-device bytes streamed."""
        return sum(c.transfer_bytes for c in self.chunks)

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the ideal overlap saving achieved (0..1)."""
        return self.schedule.overlap_efficiency

    @property
    def timeline(self) -> Optional[Timeline]:
        """The :class:`~repro.gpusim.timeline.Timeline` the pipeline was
        booked on: the device's copy and compute engines, one booking per
        chunk transfer/kernel — queryable and Chrome-trace exportable."""
        return self.schedule.timeline


def choose_chunk_nnz(
    fcoo: FCOOTensor,
    *,
    device: DeviceSpec,
    threadlen: int,
    num_streams: int,
    resident_bytes: float,
) -> int:
    """Largest threadlen-aligned chunk size whose buffers fit on the device.

    ``num_streams`` chunk buffers must be resident simultaneously next to
    the ``resident_bytes`` of factor matrices and output.  Raises
    :class:`OutOfDeviceMemory` when even a single minimal (one
    ``threadlen``-partition) chunk per stream does not fit — streaming
    cannot help when the *dense* operands alone exceed the device.
    """
    threadlen = check_positive_int(threadlen, "threadlen")
    num_streams = check_positive_int(num_streams, "num_streams")
    if fcoo.nnz == 0:
        # Nothing to stream; any size yields zero chunks.
        return threadlen
    budget = float(device.global_mem_bytes) - float(resident_bytes)
    bytes_per_nnz = fcoo.storage_bytes(threadlen) / fcoo.nnz
    min_chunk_bytes = threadlen * bytes_per_nnz
    if budget < num_streams * min_chunk_bytes:
        raise OutOfDeviceMemory(
            resident_bytes + num_streams * min_chunk_bytes,
            device.global_mem_bytes,
            what="streamed chunk buffers and resident operands",
        )
    chunk_nnz = int(budget / (num_streams * bytes_per_nnz))
    chunk_nnz = (chunk_nnz // threadlen) * threadlen
    # Never larger than the (aligned-up) stream itself, never below one
    # thread partition.
    aligned_nnz = -(-max(fcoo.nnz, 1) // threadlen) * threadlen
    return max(threadlen, min(chunk_nnz, aligned_nnz))


def execute_streamed(
    fcoo: FCOOTensor,
    chunk_kernel: ChunkKernel,
    *,
    device: DeviceSpec,
    threadlen: int,
    num_streams: int = 2,
    chunk_nnz: Optional[int] = None,
    resident_bytes: float = 0.0,
    name: str = "unified-streamed",
    output_width: Optional[int] = None,
) -> Tuple[np.ndarray, KernelProfile]:
    """Run a unified kernel chunk-by-chunk and merge the per-segment sums.

    Parameters
    ----------
    fcoo:
        The full (host-resident) F-COO encoding.
    chunk_kernel:
        Kernel-specific callable; see :data:`ChunkKernel`.
    device / threadlen / num_streams / chunk_nnz:
        Streaming configuration.  ``chunk_nnz=None`` sizes chunks
        automatically with :func:`choose_chunk_nnz`; an explicit value must
        be at least ``threadlen`` and is rounded down to a ``threadlen``
        multiple.
    resident_bytes:
        Device bytes held for the whole execution (factors + output).
    name:
        Profile name; ``-streamed`` is appended.
    output_width:
        Column count of the per-segment sums; normally inferred from the
        first chunk's result, only needed to shape the output when the
        non-zero stream is empty (defaults to 1 then).

    Returns
    -------
    (segment_sums, profile)
        ``segment_sums`` has shape ``(fcoo.num_segments, width)`` with the
        merged per-segment reductions (cross-chunk partial segments summed);
        ``profile.streaming`` carries the :class:`StreamedExecution` ledger.
    """
    num_streams = check_positive_int(num_streams, "num_streams")
    if chunk_nnz is None:
        chunk_nnz = choose_chunk_nnz(
            fcoo,
            device=device,
            threadlen=threadlen,
            num_streams=num_streams,
            resident_bytes=resident_bytes,
        )
    else:
        chunk_nnz = check_positive_int(chunk_nnz, "chunk_nnz")
        if chunk_nnz < threadlen:
            raise ValueError(
                f"chunk_nnz ({chunk_nnz}) must be at least threadlen ({threadlen}): "
                "a chunk cannot be smaller than one thread partition"
            )
        chunk_nnz = (chunk_nnz // threadlen) * threadlen

    chunks = fcoo.chunk(chunk_nnz, threadlen=threadlen)

    # Validate the device budget up front (the chunk byte sizes are pure
    # arithmetic) so an explicit over-sized chunk_nnz fails before any chunk
    # work is done rather than after the whole stream has executed.
    chunk_bytes = [float(c.tensor.storage_bytes(threadlen)) for c in chunks]
    peak_chunk_bytes = max(chunk_bytes, default=0.0)
    footprint = resident_bytes + num_streams * peak_chunk_bytes
    if footprint > device.global_mem_bytes:
        raise OutOfDeviceMemory(footprint, device.global_mem_bytes, what=name)

    ledgers: List[ChunkLedger] = []
    timings: List[ChunkTiming] = []
    merged = KernelCounters()
    segment_sums: Optional[np.ndarray] = None

    for i, chunk in enumerate(chunks):
        local_sums, counters, launch = chunk_kernel(chunk.tensor)
        local_sums = coerce_segment_sums(local_sums, chunk.num_segments)
        if segment_sums is None:
            segment_sums = np.zeros(
                (fcoo.num_segments, local_sums.shape[1]), dtype=np.float64
            )
        segment_sums[
            chunk.segment_offset : chunk.segment_offset + chunk.num_segments
        ] += local_sums

        transfer_bytes = chunk_bytes[i]
        counters.host_to_device_bytes += transfer_bytes
        compute_s, _ = estimate_kernel_time(
            counters, launch, device, include_transfers=False
        )
        transfer_s = transfer_bytes / device.pcie_bandwidth_bytes_per_s
        ledgers.append(
            ChunkLedger(
                index=i,
                start=chunk.start,
                stop=chunk.stop,
                nnz=chunk.nnz,
                num_segments=chunk.num_segments,
                carries_in=chunk.carries_in,
                transfer_bytes=transfer_bytes,
                transfer_s=transfer_s,
                compute_s=compute_s,
                counters=counters,
            )
        )
        timings.append(ChunkTiming(transfer_s=transfer_s, compute_s=compute_s))
        merged = merged.merge(counters)

    if segment_sums is None:
        segment_sums = np.zeros(
            (fcoo.num_segments, output_width if output_width else 1), dtype=np.float64
        )

    schedule = schedule_chunks(timings, num_streams)
    execution = StreamedExecution(
        num_streams=num_streams,
        chunk_nnz=chunk_nnz,
        threadlen=threadlen,
        chunks=ledgers,
        schedule=schedule,
    )
    profile = KernelProfile(
        name=f"{name}-streamed",
        counters=merged,
        estimated_time_s=schedule.total_time_s,
        device_memory_bytes=footprint,
        breakdown={
            "compute": schedule.compute_time_s,
            "transfer": schedule.transfer_time_s,
            "overlap_saved": schedule.overlap_saved_s,
            "chunks": float(len(ledgers)),
        },
        streaming=execution,
    )
    return segment_sums, profile


def streamed_unified_kernel(
    fcoo: FCOOTensor,
    numeric_core: NumericCore,
    *,
    rank: int,
    output_width: int,
    flops_per_nnz_per_column: float,
    block_size: int,
    threadlen: int,
    fused: bool,
    device: DeviceSpec,
    num_streams: int,
    chunk_nnz: Optional[int],
    resident_bytes: float,
    name: str,
) -> Tuple[np.ndarray, KernelProfile]:
    """Streamed execution of a unified kernel given its numeric core.

    All three unified kernels share the same per-chunk shape — run the
    numeric core, build the launch, assemble the counter ledger — and differ
    only in the core itself, the gathered rank, the output width and the
    per-column FLOP charge.  This wrapper owns the shared part so the
    kernels stay single-sourced.
    """

    def chunk_kernel(chunk: FCOOTensor):
        sums, row_streams = numeric_core(chunk)
        chunk_launch = LaunchConfig.for_nnz(
            chunk.nnz, rank, block_size=block_size, threadlen=threadlen
        )
        counters = unified_kernel_counters(
            chunk,
            row_streams,
            rank,
            output_rows=chunk.num_segments,
            output_width=output_width,
            launch=chunk_launch,
            device=device,
            flops_per_nnz_per_column=flops_per_nnz_per_column,
            fused=fused,
        )
        return sums, counters, chunk_launch

    return execute_streamed(
        fcoo,
        chunk_kernel,
        device=device,
        threadlen=threadlen,
        num_streams=num_streams,
        chunk_nnz=chunk_nnz,
        resident_bytes=resident_bytes,
        name=name,
        output_width=output_width,
    )
