"""Unified one-shot SpMTTKRP on the F-COO format (paper Sections IV-B/C/D).

Computes, for a third-order tensor and ``mode = 0`` (the paper's mode-1),

``M(i, :) = Σ_j Σ_k X(i, j, k) · (B(j, :) ∗ C(k, :))``

directly on the non-zeros (one-shot, Figure 3b): each non-zero gathers one
row from every product-mode factor through the read-only cache, forms their
Hadamard product scaled by the value, and a segmented scan over the F-COO
bit-flags reduces the contributions of each output slice without atomic
updates.  The implementation generalises to any order (the Hadamard product
simply runs over all product modes) and any target mode.

When the operands exceed device memory the kernel falls back to (or is
forced onto, via ``streamed=True``) the out-of-core path of
:mod:`repro.kernels.unified.streaming`: the non-zero stream is chunked on
``threadlen``-aligned boundaries, chunks are pipelined through PCIe on
``num_streams`` CUDA streams, and the per-chunk slice sums merge into the
same output the one-shot kernel produces.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backends import Backend, get_backend
from repro.context import UNSET, ExecContext, resolve_context
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import resolve_cluster
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timing import profile_from_counters
from repro.kernels.common import MTTKRPResult, validate_factor
from repro.kernels.unified._model import (
    unified_device_footprint,
    unified_kernel_counters,
)
from repro.kernels.unified.sharded import sharded_unified_kernel
from repro.kernels.unified.streaming import should_stream, streamed_unified_kernel
from repro.obs.metrics import observe_kernel_profile
from repro.tensor.sparse import SparseTensor
from repro.util.validation import check_mode

__all__ = ["unified_spmttkrp", "spmttkrp_footprint"]


def spmttkrp_footprint(
    fcoo: FCOOTensor,
    rank: int,
    *,
    block_size: int = 128,
    threadlen: int = 8,
) -> Tuple[float, float]:
    """One-shot device footprint of :func:`unified_spmttkrp`.

    Returns ``(footprint_bytes, resident_bytes)`` where ``resident_bytes``
    is the factor-matrix + output portion that stays on the device even on
    the streamed path.  Shared with :class:`repro.algorithms.cp.UnifiedGPUEngine`
    so the engine's transfer accounting uses the exact numbers the kernel's
    streamed/one-shot decision uses.
    """
    shape = fcoo.shape
    factor_bytes = sum(shape[m] * rank * 4.0 for m in fcoo.roles.product_modes)
    output_bytes = shape[fcoo.mode] * rank * 4.0
    launch = LaunchConfig.for_nnz(
        max(fcoo.nnz, 1), rank, block_size=block_size, threadlen=threadlen
    )
    footprint = unified_device_footprint(fcoo, launch, factor_bytes, output_bytes)
    return footprint, factor_bytes + output_bytes


def _slice_sums(
    fcoo: FCOOTensor, mats: Sequence[np.ndarray], backend: Backend
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Numeric core: per-slice Hadamard sums plus the factor row streams."""
    row_streams: List[np.ndarray] = [
        fcoo.product_mode_indices(pos).astype(np.int64) for pos in range(len(mats))
    ]
    sums = backend.hadamard_segment_sums(
        fcoo.values, mats, row_streams, fcoo.segment_ids, fcoo.num_segments
    )
    return sums, row_streams


def unified_spmttkrp(
    tensor: Union[SparseTensor, FCOOTensor],
    factors: Sequence[np.ndarray],
    mode: int,
    *,
    device: DeviceSpec = TITAN_X,
    block_size: int = 128,
    threadlen: int = 8,
    fused: bool = True,
    streamed: Any = UNSET,
    num_streams: Any = UNSET,
    chunk_nnz: Any = UNSET,
    cluster: Any = UNSET,
    devices: Any = UNSET,
    ctx: Optional[ExecContext] = None,
) -> MTTKRPResult:
    """Compute MTTKRP with the unified F-COO algorithm.

    Parameters
    ----------
    tensor:
        The sparse input, either a :class:`SparseTensor` or an
        :class:`FCOOTensor` already encoded for SpMTTKRP on ``mode``.
    factors:
        One dense factor matrix per tensor mode (shape ``(I_m, R)``); the
        entry at ``mode`` is ignored (it is the one being recomputed in
        CP-ALS).
    mode:
        Output mode (0-based).
    device, block_size, threadlen, fused:
        As in :func:`repro.kernels.unified.spttm.unified_spttm`.
    ctx:
        The :class:`~repro.context.ExecContext` carrying the out-of-core
        (``streamed`` / ``num_streams`` / ``chunk_nnz``) and multi-GPU
        (``cluster`` / ``devices``) controls.
    streamed, num_streams, chunk_nnz, cluster, devices:
        Deprecated aliases for the matching ``ctx`` fields; still honored
        (they override ``ctx``) but warn once per parameter.

    Returns
    -------
    MTTKRPResult
        The dense ``(I_mode, R)`` result and the simulated kernel profile
        (``profile.streaming`` holds the per-chunk ledger on the streamed
        path).
    """
    ctx = resolve_context(
        "unified_spmttkrp",
        ctx,
        streamed=streamed,
        num_streams=num_streams,
        chunk_nnz=chunk_nnz,
        cluster=cluster,
        devices=devices,
    )
    streamed, num_streams, chunk_nnz = ctx.streamed, ctx.num_streams, ctx.chunk_nnz
    cluster, devices = ctx.cluster, ctx.devices
    backend_impl = get_backend(ctx.backend)
    if isinstance(tensor, FCOOTensor):
        fcoo = tensor
        if (
            fcoo.operation is not OperationKind.SPMTTKRP
            or fcoo.mode != check_mode(mode, fcoo.order)
        ):
            raise ValueError(
                f"the provided FCOOTensor is encoded for {fcoo.operation.value} on mode "
                f"{fcoo.mode}, not SpMTTKRP on mode {mode}"
            )
    else:
        mode = check_mode(mode, tensor.order)
        fcoo = FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, mode)

    shape = fcoo.shape
    order = fcoo.order
    if len(factors) != order:
        raise ValueError(f"need one factor per mode ({order}), got {len(factors)}")
    product_modes = fcoo.roles.product_modes
    mats = [
        validate_factor(factors[m], shape[m], f"factors[{m}]") for m in product_modes
    ]
    ranks = {m.shape[1] for m in mats}
    if len(ranks) != 1:
        raise ValueError(f"product-mode factors must share one rank, got {sorted(ranks)}")
    rank = ranks.pop()

    output = np.zeros((shape[fcoo.mode], rank), dtype=np.float64)
    launch = LaunchConfig.for_nnz(
        max(fcoo.nnz, 1), rank, block_size=block_size, threadlen=threadlen
    )
    # Hadamard across P product modes costs P multiplies per column plus the
    # segmented add: charge 2 + (P - 1) FLOPs per non-zero per column.
    flops_per_col = 2.0 + (len(product_modes) - 1)
    footprint, resident_bytes = spmttkrp_footprint(
        fcoo, rank, block_size=block_size, threadlen=threadlen
    )

    device, multi = resolve_cluster(device, cluster, devices)
    if multi is not None and fcoo.nnz:
        # -------------------------------------------------------------- #
        # Multi-GPU path: the non-zero stream shards across the cluster,
        # each device reduces its slices, and the dense output all-reduces.
        # -------------------------------------------------------------- #
        slice_sums, profile = sharded_unified_kernel(
            fcoo,
            lambda chunk: _slice_sums(chunk, mats, backend_impl),
            rank=rank,
            output_width=rank,
            flops_per_nnz_per_column=flops_per_col,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            cluster=multi,
            streamed=streamed,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=resident_bytes,
            output_bytes=shape[fcoo.mode] * rank * 4.0,
            name=f"unified-spmttkrp-mode{fcoo.mode}",
            reduction="allreduce",
        )
        np.add.at(output, fcoo.segment_index_coords[:, 0], slice_sums)
        if ctx.metrics is not None:
            observe_kernel_profile(
                ctx.metrics, kernel="spmttkrp", nnz=fcoo.nnz, profile=profile
            )
        return MTTKRPResult(output=output, profile=profile)

    if should_stream(fcoo, footprint, device, streamed):
        # -------------------------------------------------------------- #
        # Out-of-core path: the same numeric core runs chunk-by-chunk and
        # the per-chunk slice sums merge by global segment id.
        # -------------------------------------------------------------- #
        slice_sums, profile = streamed_unified_kernel(
            fcoo,
            lambda chunk: _slice_sums(chunk, mats, backend_impl),
            rank=rank,
            output_width=rank,
            flops_per_nnz_per_column=flops_per_col,
            block_size=block_size,
            threadlen=threadlen,
            fused=fused,
            device=device,
            num_streams=num_streams,
            chunk_nnz=chunk_nnz,
            resident_bytes=resident_bytes,
            name=f"unified-spmttkrp-mode{fcoo.mode}",
        )
        np.add.at(output, fcoo.segment_index_coords[:, 0], slice_sums)
        if ctx.metrics is not None:
            observe_kernel_profile(
                ctx.metrics, kernel="spmttkrp", nnz=fcoo.nnz, profile=profile
            )
        return MTTKRPResult(output=output, profile=profile)

    row_streams: List[np.ndarray] = []
    if fcoo.nnz:
        # ------------------------------------------------------------------ #
        # Numerical result.
        # ------------------------------------------------------------------ #
        slice_sums, row_streams = _slice_sums(fcoo, mats, backend_impl)
        # Scatter the per-slice sums to the output rows (the segment table
        # stores the index-mode coordinate of each slice).
        out_rows = fcoo.segment_index_coords[:, 0]
        np.add.at(output, out_rows, slice_sums)

    # ------------------------------------------------------------------ #
    # Simulated cost.
    # ------------------------------------------------------------------ #
    counters = unified_kernel_counters(
        fcoo,
        row_streams,
        rank,
        output_rows=fcoo.num_segments,
        output_width=rank,
        launch=launch,
        device=device,
        flops_per_nnz_per_column=flops_per_col,
        fused=fused,
    )
    profile = profile_from_counters(
        f"unified-spmttkrp-mode{fcoo.mode}",
        counters,
        launch,
        device,
        device_memory_bytes=footprint,
    )
    if ctx.metrics is not None:
        observe_kernel_profile(
            ctx.metrics, kernel="spmttkrp", nnz=fcoo.nnz, profile=profile
        )
    return MTTKRPResult(output=output, profile=profile)
