"""Cost-model helpers shared by the unified kernels.

The unified kernels differ only in the width of their per-non-zero product
(1 column group for SpTTM, ``R`` for SpMTTKRP, ``R_1·R_2·...`` for SpTTMc)
and in how many product-mode index streams they read; everything else —
tensor streaming, factor access through the read-only cache, segmented scan,
output scatter — is common and modelled here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.formats.fcoo import FCOOTensor
from repro.gpusim.counters import KernelCounters
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.memory import AccessPattern, coalesced_traffic_bytes, readonly_cache_traffic
from repro.gpusim.scan import segmented_scan_counters

__all__ = [
    "tensor_stream_counters",
    "factor_access_counters",
    "output_scatter_counters",
    "unified_kernel_counters",
    "unified_device_footprint",
]


def tensor_stream_counters(
    fcoo: FCOOTensor,
    launch: LaunchConfig,
    device: DeviceSpec,
) -> KernelCounters:
    """Traffic for streaming the F-COO arrays (indices, values, flags).

    Consecutive threads read consecutive array elements, so every stream is
    perfectly coalesced; the whole tensor is read exactly once per kernel
    thanks to kernel fusion (the product, scan and accumulate stages share
    the data in registers / shared memory).
    """
    nnz = fcoo.nnz
    index_bytes = fcoo.index_dtype.itemsize * fcoo.product_indices.shape[1]
    value_bytes = fcoo.value_dtype.itemsize
    bf_bytes = nnz / 8.0
    sf_bytes = fcoo.num_partitions(launch.threadlen) / 8.0
    read = coalesced_traffic_bytes(
        nnz, index_bytes + value_bytes, AccessPattern.COALESCED, device
    )
    read += bf_bytes + sf_bytes
    return KernelCounters(gmem_read_bytes=read)


def factor_access_counters(
    row_indices: np.ndarray,
    rank: int,
    device: DeviceSpec,
    *,
    use_readonly_cache: bool = True,
    value_bytes: int = 4,
) -> KernelCounters:
    """Traffic for gathering factor-matrix rows selected by a product mode.

    Each non-zero reads one row (``rank`` values) of the factor matrix whose
    row index comes from the product-mode index stream.  The unified kernels
    route these reads through the read-only data cache; a baseline that does
    not (``use_readonly_cache=False``) only benefits from the L2.
    """
    row_bytes = float(rank * value_bytes)
    cache_bytes = (
        float(device.readonly_cache_bytes_total + device.l2_bytes)
        if use_readonly_cache
        else float(device.l2_bytes)
    )
    traffic = readonly_cache_traffic(row_indices, row_bytes, device, cache_bytes=cache_bytes)
    return KernelCounters(gmem_read_bytes=traffic.dram_bytes)


def output_scatter_counters(
    num_rows: int,
    row_width: int,
    device: DeviceSpec,
    *,
    value_bytes: int = 4,
    coalesced: bool = True,
) -> KernelCounters:
    """Traffic for writing the reduced per-segment results to global memory."""
    pattern = AccessPattern.COALESCED if coalesced else AccessPattern.RANDOM
    written = coalesced_traffic_bytes(
        num_rows * row_width,
        value_bytes,
        pattern,
        device,
        contiguous_run_bytes=row_width * value_bytes,
    )
    return KernelCounters(gmem_write_bytes=written)


def unified_kernel_counters(
    fcoo: FCOOTensor,
    factor_row_streams: Sequence[np.ndarray],
    rank: int,
    output_rows: int,
    output_width: int,
    launch: LaunchConfig,
    device: DeviceSpec,
    *,
    flops_per_nnz_per_column: float = 2.0,
    fused: bool = True,
) -> KernelCounters:
    """Assemble the full ledger of one unified kernel execution.

    Parameters
    ----------
    fcoo:
        The encoded tensor.
    factor_row_streams:
        One row-index stream per dense factor matrix that is gathered (for
        SpTTM a single stream, for SpMTTKRP/SpTTMc one per product mode).
    rank:
        Number of columns of each gathered factor matrix.
    output_rows / output_width:
        Shape of the reduced result written to global memory.
    launch:
        Launch configuration (block size, threadlen, grid).
    device:
        Target device.
    flops_per_nnz_per_column:
        Arithmetic per non-zero per output column (2 for a multiply-add,
        higher when several factor rows are combined).
    fused:
        Whether the product/scan/accumulate stages run as one kernel
        (the unified default).  ``False`` is used by the fusion ablation.
    """
    nnz = fcoo.nnz
    counters = tensor_stream_counters(fcoo, launch, device)
    for stream in factor_row_streams:
        counters = counters.merge(
            factor_access_counters(stream, rank, device, use_readonly_cache=True)
        )
    counters = counters.merge(
        output_scatter_counters(output_rows, output_width, device)
    )
    scan = segmented_scan_counters(
        num_elements=nnz,
        num_segments=fcoo.num_segments,
        rank=output_width,
        launch=launch,
        device=device,
        fused=fused,
    )
    counters = counters.merge(scan)
    counters.flops += flops_per_nnz_per_column * nnz * output_width
    counters.active_threads = float(
        min(launch.total_threads, max(1, -(-nnz // launch.threadlen)) * launch.grid_y)
    )
    counters.kernel_launches += 1 if fused else 2
    counters.imbalance_factor = 1.0  # non-zero partitioning is perfectly balanced
    return counters


def unified_device_footprint(
    fcoo: FCOOTensor,
    launch: LaunchConfig,
    factor_bytes: float,
    output_bytes: float,
) -> float:
    """Device-memory footprint of one unified kernel (inputs + outputs).

    The one-shot strategy keeps no intermediate tensors; only the F-COO
    arrays, the dense factor matrices and the output are resident.
    """
    return float(fcoo.storage_bytes(launch.threadlen) + factor_bytes + output_bytes)
