"""Multi-GPU sharded execution of the unified kernels.

The streamed path (PR 1) broke the single-device *memory* ceiling; this
module breaks the single-device *throughput* ceiling: the F-COO non-zero
stream is partitioned across the members of a
:class:`~repro.gpusim.cluster.ClusterSpec` on the same segment-safe,
``threadlen``-aligned boundaries the out-of-core path uses
(:meth:`~repro.formats.fcoo.FCOOTensor.chunk`), each shard executes the
unchanged one-shot kernel on its own device — falling back to the
per-device streamed path when the shard still exceeds that device's memory
— and the per-device partial outputs merge through a modeled collective:

* a **ring all-reduce** of the dense output for SpMTTKRP / SpTTMc (every
  device needs the updated factor for the next ALS/HOOI sweep), or
* a **boundary exchange** for SpTTM (the semi-sparse output stays
  partitioned across the devices for the next pipeline stage to consume in
  place; only the partial fibers straddling a shard boundary move to a
  neighbour), with a **gather** onto the root available for callers that
  need the whole output on one device.

Shards are treated as *staged*: like the single-device one-shot kernels
(whose profiles exclude the initial tensor transfer — the CP engine charges
it once in ``prepare()``), a shard's H2D staging bytes are recorded in its
ledger but not charged to the kernel makespan.  A shard that falls back to
streaming re-ships its chunks every execution and is charged exactly as the
single-device streamed path would be.

Numeric outputs are *bit-identical* to the one-shot kernels for every
cluster shape: the per-segment sums are computed once from the full stream
in the canonical in-order reduction, and the shards model only time and
memory.  ``tests/test_sharded.py`` is the property harness proving it
across 1/2/4 devices, and mid-run fault recovery (checkpoint/replay on the
survivor topology) relies on it for recovered-run == failure-free-run
factor identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.formats.fcoo import FCOOChunk, FCOOTensor
from repro.gpusim.cluster import ClusterLike, MultiNodeClusterSpec
from repro.gpusim.counters import KernelCounters, KernelProfile
from repro.gpusim.device import DeviceSpec
from repro.gpusim.launch import LaunchConfig
from repro.gpusim.timeline import Timeline, device_compute_key, device_copy_key
from repro.gpusim.timing import profile_from_counters
from repro.kernels.unified._model import (
    unified_device_footprint,
    unified_kernel_counters,
)
from repro.kernels.unified.streaming import (
    NumericCore,
    coerce_segment_sums,
    should_stream,
    streamed_unified_kernel,
)
from repro.util.validation import check_positive_int

__all__ = [
    "ShardLedger",
    "ShardedExecution",
    "ShardedTimeline",
    "RecoveryPlan",
    "partition_shards",
    "partition_shards_hierarchical",
    "partition_for_cluster",
    "plan_node_recovery",
    "execute_sharded",
    "sharded_unified_kernel",
]

#: A per-shard kernel: maps one shard's F-COO encoding and its device to the
#: shard's local per-segment sums ``(shard.num_segments, width)`` plus the
#: profile of executing it on that device (one-shot or streamed).
ShardKernel = Callable[[FCOOTensor, DeviceSpec], Tuple[np.ndarray, KernelProfile]]


def partition_shards(
    fcoo: FCOOTensor,
    num_shards: int,
    *,
    threadlen: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> List[FCOOChunk]:
    """Split the non-zero stream into at most ``num_shards`` device shards.

    With ``weights=None`` (the homogeneous fast path) the shard size is
    ``ceil(nnz / num_shards)`` rounded *up* to a ``threadlen`` multiple, so
    shard boundaries coincide with per-thread partition boundaries and the
    shard count never exceeds the device count (a short stream simply
    leaves trailing devices idle).

    With ``weights`` (one positive entry per shard — typically
    :meth:`~repro.gpusim.cluster.ClusterSpec.capability_weights` of a
    heterogeneous cluster) the per-thread partitions are allocated to
    shards *proportionally to the weights* by largest remainder, so a
    device with twice the modeled throughput receives (up to ``threadlen``
    granularity) twice the non-zeros and the shards finish together.
    Exactly ``num_shards`` chunks are returned in this mode, empty chunks
    included, so ``shards[i]`` always executes on device ``i`` — a device
    allocated no partitions gets an empty placeholder, not a shifted
    neighbour's shard.

    Either way boundaries are ``threadlen``-aligned and segment safety — a
    fiber/slice straddling a shard boundary — is handled by the same
    global-segment-id bookkeeping the out-of-core chunks use.
    """
    num_shards = check_positive_int(num_shards, "num_shards")
    threadlen = check_positive_int(threadlen, "threadlen")
    if fcoo.nnz == 0:
        return []
    if weights is None:
        per_shard = -(-fcoo.nnz // num_shards)
        per_shard = -(-per_shard // threadlen) * threadlen
        return fcoo.chunk(per_shard, threadlen=threadlen)

    weights = [float(w) for w in weights]
    if len(weights) != num_shards:
        raise ValueError(
            f"need one weight per shard ({num_shards}), got {len(weights)}"
        )
    n_parts = -(-fcoo.nnz // threadlen)
    alloc = _allocate_partitions(n_parts, weights)
    return _chunks_from_allocation(fcoo, alloc, threadlen)


def _allocate_partitions(n_parts: int, weights: Sequence[float]) -> List[int]:
    """Allocate ``n_parts`` whole thread partitions by largest remainder.

    Floor each slot's ideal share, then hand the leftover partitions to
    the largest fractional parts (ties broken toward the heavier weight,
    then the lower slot, for determinism).
    """
    weights = [float(w) for w in weights]
    if any(not np.isfinite(w) or w <= 0.0 for w in weights):
        raise ValueError(f"shard weights must be positive and finite, got {weights}")
    total = sum(weights)
    ideal = [n_parts * w / total for w in weights]
    alloc = [int(share) for share in ideal]
    order = sorted(
        range(len(weights)), key=lambda i: (-(ideal[i] - alloc[i]), -weights[i], i)
    )
    for i in order[: n_parts - sum(alloc)]:
        alloc[i] += 1
    return alloc


def _chunks_from_allocation(
    fcoo: FCOOTensor, alloc: Sequence[int], threadlen: int
) -> List[FCOOChunk]:
    """Materialise contiguous shard spans from a per-slot partition count."""
    chunks: List[FCOOChunk] = []
    consumed = 0
    for parts in alloc:
        start = min(consumed * threadlen, fcoo.nnz)
        stop = min((consumed + parts) * threadlen, fcoo.nnz)
        chunks.append(fcoo.chunk_span(start, stop, threadlen=threadlen))
        consumed += parts
    return chunks


def partition_shards_hierarchical(
    fcoo: FCOOTensor,
    cluster: MultiNodeClusterSpec,
    *,
    threadlen: int = 1,
) -> List[FCOOChunk]:
    """Topology-aware sharding: node spans first, devices within them.

    The ``threadlen``-aligned partitions of the non-zero stream are first
    allocated to *nodes* proportionally to each node's aggregate
    capability (:meth:`~repro.gpusim.cluster.MultiNodeClusterSpec.node_capability_weights`),
    so every node owns one contiguous span; each node's span is then
    subdivided across its member devices proportionally to their
    individual capabilities.  Exactly ``cluster.num_devices`` chunks come
    back in flat slot order, empty placeholders included, so
    ``shards[i]`` always executes on flat device slot ``i``.

    Boundaries are ``threadlen``-aligned everywhere, and node-span
    boundaries coincide with shard boundaries by construction — a segment
    straddling two nodes is merged by the same global-segment-id
    bookkeeping as any other shard boundary, only priced over the NIC by
    the reduction model instead of the P2P tier.
    """
    threadlen = check_positive_int(threadlen, "threadlen")
    if fcoo.nnz == 0:
        return []
    n_parts = -(-fcoo.nnz // threadlen)
    node_alloc = _allocate_partitions(n_parts, cluster.node_capability_weights())
    scores = cluster.capability_scores()
    alloc: List[int] = []
    start = 0
    for node, node_parts in zip(cluster.nodes, node_alloc):
        node_scores = scores[start : start + node.num_devices]
        start += node.num_devices
        alloc.extend(_allocate_partitions(node_parts, node_scores))
    return _chunks_from_allocation(fcoo, alloc, threadlen)


def partition_for_cluster(
    fcoo: FCOOTensor,
    cluster: ClusterLike,
    *,
    threadlen: int = 1,
) -> List[FCOOChunk]:
    """The shard partition ``execute_sharded`` uses for ``cluster``.

    Topology-aware (:func:`partition_shards_hierarchical`) for a
    :class:`~repro.gpusim.cluster.MultiNodeClusterSpec`,
    capability-weighted for a heterogeneous single-node cluster, and the
    exact even-split fast path for a homogeneous one.  Single-sourced so
    the recovery planner reasons about precisely the shards a re-executed
    kernel will use — the partition for a given ``(fcoo, cluster,
    threadlen)`` is a pure function of its arguments.
    """
    if isinstance(cluster, MultiNodeClusterSpec):
        return partition_shards_hierarchical(fcoo, cluster, threadlen=threadlen)
    weights = None if cluster.is_homogeneous else cluster.capability_weights()
    return partition_shards(
        fcoo, cluster.num_devices, threadlen=threadlen, weights=weights
    )


@dataclass(frozen=True)
class RecoveryPlan:
    """Re-partitioning plan after the loss of one node mid-run.

    Attributes
    ----------
    failed_node:
        Index of the lost node in the original
        :class:`~repro.gpusim.cluster.MultiNodeClusterSpec`.
    survivor_cluster:
        The topology the re-executed kernels run on
        (:meth:`~repro.gpusim.cluster.MultiNodeClusterSpec.without_node`).
    slot_map:
        Survivor-local device slot ``i`` is original flat slot
        ``slot_map[i]`` — how recovery bookings land on the correct
        physical lanes of the shared timeline.
    restaged_bytes:
        Host-to-device bytes each survivor must re-stage, in
        survivor-local slot order: the part of its *new* shard span not
        already resident from its old span (the failed node's non-zeros
        redistributed across the survivors, plus any span drift from the
        re-balanced weights).
    restage_time_s:
        Modeled re-staging seconds: the survivors stage concurrently over
        their own host links, so the slowest transfer gates the phase.
    """

    failed_node: int
    survivor_cluster: ClusterLike
    slot_map: Tuple[int, ...]
    restaged_bytes: Tuple[float, ...]
    restage_time_s: float

    @property
    def total_restaged_bytes(self) -> float:
        """Aggregate re-staged bytes across every survivor."""
        return float(sum(self.restaged_bytes))

    def book(
        self,
        timeline: Timeline,
        *,
        ready_s: float = 0.0,
        label: str = "restage",
    ) -> float:
        """Book the re-staging onto the survivors' copy engines.

        Each survivor's transfer books its *original* slot's copy lane
        (via :attr:`slot_map`) from a common start; returns the time the
        last transfer lands — when replay may begin.
        """
        end = ready_s
        for local, nbytes in enumerate(self.restaged_bytes):
            if nbytes <= 0.0:
                continue
            slot = self.slot_map[local]
            lane = timeline.resource(device_copy_key(slot), category="copy")
            device = self.survivor_cluster.devices[local]
            booking = lane.book(
                nbytes / device.pcie_bandwidth_bytes_per_s,
                ready_s=ready_s,
                label=f"{label}:dev{slot}",
            )
            end = max(end, booking.end_s)
        return end


def plan_node_recovery(
    fcoo: FCOOTensor,
    cluster: MultiNodeClusterSpec,
    failed_node: int,
    *,
    threadlen: int = 1,
) -> RecoveryPlan:
    """Plan the re-partitioning of ``fcoo`` after losing ``failed_node``.

    Compares the shard spans of the original topology against the spans
    of the survivor topology (both through :func:`partition_for_cluster`,
    so they are exactly what ``execute_sharded`` used and will use): each
    survivor re-stages the part of its new contiguous span that its old
    span did not already hold.  Bytes are priced at the encoding's mean
    storage bytes per non-zero; the survivors' host links transfer
    concurrently, so the slowest survivor gates
    :attr:`RecoveryPlan.restage_time_s`.
    """
    survivor = cluster.without_node(failed_node)
    slot_map = cluster.surviving_slots(failed_node)
    old_shards = partition_for_cluster(fcoo, cluster, threadlen=threadlen)
    new_shards = partition_for_cluster(fcoo, survivor, threadlen=threadlen)
    bytes_per_nnz = (
        float(fcoo.storage_bytes(threadlen)) / fcoo.nnz if fcoo.nnz else 0.0
    )
    restaged: List[float] = [0.0] * survivor.num_devices
    restage_time = 0.0
    for local, chunk in enumerate(new_shards):
        if chunk.nnz == 0:
            continue
        original_slot = slot_map[local]
        if original_slot < len(old_shards):
            old_chunk = old_shards[original_slot]
            overlap = max(
                0, min(chunk.stop, old_chunk.stop) - max(chunk.start, old_chunk.start)
            )
        else:
            overlap = 0
        nbytes = (chunk.nnz - overlap) * bytes_per_nnz
        restaged[local] = nbytes
        device = survivor.devices[local]
        restage_time = max(restage_time, nbytes / device.pcie_bandwidth_bytes_per_s)
    return RecoveryPlan(
        failed_node=failed_node,
        survivor_cluster=survivor,
        slot_map=slot_map,
        restaged_bytes=tuple(restaged),
        restage_time_s=restage_time,
    )


@dataclass(frozen=True)
class ShardLedger:
    """Counter ledger of one device's shard.

    Attributes
    ----------
    index:
        Device slot the shard executed on (``cluster.devices[index]``).
    device_name:
        The device's human-readable name.
    start / stop / nnz / num_segments / carries_in:
        Position and statistics of the shard in the non-zero stream
        (``carries_in`` marks a segment straddling the boundary with the
        previous shard).
    staged_bytes:
        Host-to-device bytes staged before execution (the shard's F-COO
        arrays); informational — staging happens once, outside the kernel,
        exactly like the single-device one-shot path.
    time_s:
        The shard's wall time on its device (streamed makespan when the
        shard fell back to the out-of-core path).
    counters:
        The shard kernel's work ledger.
    streaming:
        The per-device :class:`~repro.kernels.unified.streaming.StreamedExecution`
        ledger when the shard exceeded its device's memory; ``None`` for a
        resident shard.
    """

    index: int
    device_name: str
    start: int
    stop: int
    nnz: int
    num_segments: int
    carries_in: bool
    staged_bytes: float
    time_s: float
    counters: KernelCounters
    streaming: Optional[object] = None


@dataclass
class ShardedExecution:
    """Full ledger of one multi-GPU sharded kernel execution.

    Attributes
    ----------
    cluster / threadlen:
        The cluster and alignment the stream was sharded with.
    shards:
        One :class:`ShardLedger` per executed shard, in device order.
    reduction_kind / reduction_bytes / reduction_time_s:
        The modeled collective merging the per-device partial outputs
        (``"allreduce"`` or ``"gather"``; zero-cost when a single shard
        executed).
    """

    cluster: ClusterLike
    threadlen: int
    shards: List[ShardLedger]
    reduction_kind: str
    reduction_bytes: float
    reduction_time_s: float

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Shards actually executed (at most ``cluster.num_devices``)."""
        return len(self.shards)

    @property
    def num_devices(self) -> int:
        """Devices in the cluster (idle trailing devices included)."""
        return self.cluster.num_devices

    @property
    def device_times(self) -> Dict[int, float]:
        """Per-device busy seconds, keyed by device slot."""
        return {shard.index: shard.time_s for shard in self.shards}

    @property
    def max_shard_time_s(self) -> float:
        """Wall time of the slowest device (shards run concurrently)."""
        return max((s.time_s for s in self.shards), default=0.0)

    @property
    def busy_time_s(self) -> float:
        """Aggregate busy seconds across all devices."""
        return sum(s.time_s for s in self.shards)

    @property
    def total_time_s(self) -> float:
        """Makespan: slowest shard plus the partial-output reduction."""
        return self.max_shard_time_s + self.reduction_time_s

    @property
    def parallel_efficiency(self) -> float:
        """Busy fraction of the cluster over the makespan, in ``(0, 1]``.

        ``busy / (N * makespan)``: 1 when every device computes for the
        whole execution and nothing is spent reducing; idle devices (a
        stream shorter than ``N`` shards), load imbalance and the reduction
        all pull it below 1.
        """
        total = self.total_time_s
        if total <= 0.0:
            return 1.0
        return min(1.0, self.busy_time_s / (self.num_devices * total))

    @property
    def has_streaming_shards(self) -> bool:
        """Whether any shard fell back to the per-device streamed path."""
        return any(s.streaming is not None for s in self.shards)

    # ------------------------------------------------------------------ #
    def book(
        self,
        timeline: Timeline,
        *,
        ready_s: float = 0.0,
        label: str = "sharded-kernel",
        slot_map: Optional[Sequence[int]] = None,
    ) -> Tuple[float, float]:
        """Book this execution onto a shared timeline; returns ``(start, end)``.

        Each shard's busy seconds book its device slot's compute engine
        (all shards start together — they run concurrently) and the
        partial-output reduction books the cluster's collective resources
        (intra-node links, per-node NICs) after the slowest shard.  On an
        idle timeline ``end - start`` equals :attr:`total_time_s` (up to
        float association); busy collective resources — another job's
        in-flight all-reduce on a shared NIC — can only push the end
        later.  This is how the decomposition drivers and the scaling
        trace exporter place kernel executions on the unified timeline.

        ``slot_map`` translates shard slots to physical device slots (a
        survivor cluster after a node loss numbers its slots locally);
        without it the shard index itself is the physical slot.
        """

        def physical(slot: int) -> int:
            if slot_map is not None and slot < len(slot_map):
                return slot_map[slot]
            return slot

        compute = [
            timeline.resource(device_compute_key(physical(s.index)), category="compute")
            for s in self.shards
        ]
        start = ready_s
        for resource in compute:
            start = max(start, resource.free_s)
        for resource, shard in zip(compute, self.shards):
            resource.book(
                shard.time_s,
                ready_s=start,
                label=f"{label}:shard{physical(shard.index)}",
            )
        compute_end = start + self.max_shard_time_s
        end = compute_end
        if self.reduction_time_s > 0.0 and len(self.shards) > 1:
            gang = self.cluster.book_collective(
                timeline,
                self.reduction_time_s,
                ready_s=compute_end,
                label=f"{label}:{self.reduction_kind}",
            )
            end = gang.end_s
        return start, end


class ShardedTimeline:
    """Per-device timeline accumulated over many sharded kernel executions.

    The decomposition drivers (CP-ALS engine, Tucker/HOOI) feed every
    kernel profile through :meth:`observe` and report the aggregate
    per-device busy seconds and scaling efficiency; keeping the
    bookkeeping here keeps the efficiency definition single-sourced.
    """

    def __init__(self, num_devices: int) -> None:
        self.num_devices = check_positive_int(num_devices, "num_devices")
        self.device_busy_s: Dict[int, float] = {}
        self.reduction_time_s = 0.0
        self.makespan_s = 0.0

    def observe(
        self, profile: KernelProfile, *, slot_map: Optional[Sequence[int]] = None
    ) -> None:
        """Accumulate one kernel profile (single-device profiles are ignored).

        ``slot_map`` translates the execution's local device slots to
        physical ones — after a node loss the survivor cluster's slot
        ``i`` is physical slot ``slot_map[i]``, and the accumulated
        per-device ledger stays keyed by physical slot throughout.
        """
        execution = getattr(profile, "sharded", None)
        if execution is None:
            return
        for slot, busy in execution.device_times.items():
            if slot_map is not None and slot < len(slot_map):
                slot = slot_map[slot]
            self.device_busy_s[slot] = self.device_busy_s.get(slot, 0.0) + busy
        self.reduction_time_s += execution.reduction_time_s
        self.makespan_s += execution.total_time_s

    @property
    def parallel_efficiency(self) -> Optional[float]:
        """Cluster busy fraction over all observed makespans, in ``(0, 1]``.

        ``sum(per-device busy) / (N * sum(makespans))``; ``None`` before
        any sharded execution was observed.
        """
        if self.makespan_s <= 0.0:
            return None
        busy = sum(self.device_busy_s.values())
        return min(1.0, busy / (self.num_devices * self.makespan_s))


def execute_sharded(
    fcoo: FCOOTensor,
    shard_kernel: ShardKernel,
    *,
    cluster: ClusterLike,
    threadlen: int,
    output_bytes: float,
    reduction: str = "allreduce",
    name: str = "unified-sharded",
    output_width: Optional[int] = None,
    canonical_sums: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, KernelProfile]:
    """Run a unified kernel shard-by-shard across a cluster and merge.

    Parameters
    ----------
    fcoo:
        The full (host-resident) F-COO encoding.
    shard_kernel:
        Kernel-specific callable; see :data:`ShardKernel`.
    cluster / threadlen:
        The cluster and the chunk alignment.
    output_bytes:
        Size of the dense output a ring all-reduce would move (ignored for
        the other reduction kinds, which size payloads from the per-shard
        segment bookkeeping).
    reduction:
        ``"allreduce"`` (dense factor outputs that every device needs),
        ``"boundary"`` (outputs that stay partitioned across the devices —
        the semi-sparse SpTTM fibers — where only shard-straddling
        segments exchange with a neighbour), or ``"gather"`` (collect the
        partitioned output onto the root device).
    name:
        Profile name; ``-sharded`` is appended.
    output_width:
        Column count of the per-segment sums when the stream is empty.
    canonical_sums:
        Optional pre-computed per-segment sums of the *full* stream in the
        canonical (single-device, in-order) reduction order.  When given,
        they are returned as the numeric result instead of the shard-merged
        partials, making the numbers bit-identical regardless of the shard
        topology — shard-straddling segments otherwise regroup the
        floating-point summation at the boundary.  This is the invariant
        mid-run fault recovery relies on: replaying an iteration on the
        survivor topology reproduces the failure-free numbers exactly.
        The per-shard executions still run and supply the timing ledgers.

    Returns
    -------
    (segment_sums, profile)
        ``segment_sums`` has shape ``(fcoo.num_segments, width)`` with the
        per-segment reductions (``canonical_sums`` verbatim when given,
        otherwise the shard-merged partials with shard-straddling segments
        summed); ``profile.sharded`` carries the :class:`ShardedExecution`
        ledger.
    """
    threadlen = check_positive_int(threadlen, "threadlen")
    if reduction not in ("allreduce", "boundary", "gather"):
        raise ValueError(
            f"reduction must be 'allreduce', 'boundary' or 'gather', got {reduction!r}"
        )
    # Topology-aware for a multi-node cluster (nodes own capability-weighted
    # contiguous spans, devices subdivide within their node), capability-
    # weighted for a heterogeneous single node, even-split otherwise.
    shards = partition_for_cluster(fcoo, cluster, threadlen=threadlen)

    ledgers: List[ShardLedger] = []
    merged = KernelCounters()
    segment_sums: Optional[np.ndarray] = None
    peak_device_bytes = 0.0

    for i, shard in enumerate(shards):
        if shard.nnz == 0:
            # A weighted placeholder for a device allocated no partitions
            # (or a stream shorter than the device count): the slot idles.
            continue
        device = cluster.devices[i]
        local_sums, profile = shard_kernel(shard.tensor, device)
        local_sums = coerce_segment_sums(local_sums, shard.num_segments)
        if segment_sums is None:
            segment_sums = np.zeros(
                (fcoo.num_segments, local_sums.shape[1]), dtype=np.float64
            )
        segment_sums[
            shard.segment_offset : shard.segment_offset + shard.num_segments
        ] += local_sums

        staged = (
            0.0
            if profile.streaming is not None  # streamed shards re-ship chunks
            else float(shard.tensor.storage_bytes(threadlen))
        )
        ledgers.append(
            ShardLedger(
                index=i,
                device_name=device.name,
                start=shard.start,
                stop=shard.stop,
                nnz=shard.nnz,
                num_segments=shard.num_segments,
                carries_in=shard.carries_in,
                staged_bytes=staged,
                time_s=profile.estimated_time_s,
                counters=profile.counters,
                streaming=profile.streaming,
            )
        )
        merged = merged.merge(profile.counters)
        peak_device_bytes = max(peak_device_bytes, profile.device_memory_bytes)

    if canonical_sums is not None:
        segment_sums = coerce_segment_sums(canonical_sums, fcoo.num_segments)
    elif segment_sums is None:
        segment_sums = np.zeros(
            (fcoo.num_segments, output_width if output_width else 1), dtype=np.float64
        )

    multinode = isinstance(cluster, MultiNodeClusterSpec)
    if len(ledgers) <= 1:
        reduction_bytes, reduction_time = 0.0, 0.0
    elif reduction == "allreduce":
        reduction_bytes = float(output_bytes)
        reduction_time = cluster.allreduce_time(reduction_bytes)
    elif reduction == "boundary":
        width = segment_sums.shape[1]
        # A carried segment's partial sum moves from the previous *executed*
        # shard — with empty placeholder shards in between, that can be a
        # lower slot than index - 1, possibly in another node.
        pairs = [
            (prev.index, cur.index)
            for prev, cur in zip(ledgers, ledgers[1:])
            if cur.carries_in
        ]
        payloads = [float(width * fcoo.value_dtype.itemsize) for _ in pairs]
        reduction_bytes = float(sum(payloads))
        if multinode:
            # A boundary between two nodes' spans crosses the NIC; one
            # inside a node rides that node's P2P tier.
            reduction_time = cluster.neighbor_exchange_time(
                payloads,
                slots=[dst for _, dst in pairs],
                sources=[src for src, _ in pairs],
            )
        else:
            reduction_time = cluster.neighbor_exchange_time(payloads)
    else:
        width = segment_sums.shape[1]
        if multinode:
            # The hierarchical gather prices per tier, so it needs the
            # full slot-aligned payload vector (idle slots ship nothing).
            payloads = [0.0] * cluster.num_devices
            for ledger in ledgers:
                payloads[ledger.index] = (
                    ledger.num_segments * width * fcoo.value_dtype.itemsize
                )  # slot-aligned; idle slots keep 0.0
        else:
            payloads = [
                ledger.num_segments * width * fcoo.value_dtype.itemsize
                for ledger in ledgers
            ]
        reduction_bytes = float(sum(payloads[1:]))
        reduction_time = cluster.gather_time(payloads)

    execution = ShardedExecution(
        cluster=cluster,
        threadlen=threadlen,
        shards=ledgers,
        reduction_kind=reduction,
        reduction_bytes=reduction_bytes,
        reduction_time_s=reduction_time,
    )
    profile = KernelProfile(
        name=f"{name}-sharded",
        counters=merged,
        estimated_time_s=execution.total_time_s,
        device_memory_bytes=peak_device_bytes,
        breakdown={
            "compute": execution.max_shard_time_s,
            "reduction": reduction_time,
            "devices": float(cluster.num_devices),
            "shards": float(len(ledgers)),
        },
        sharded=execution,
    )
    return segment_sums, profile


def sharded_unified_kernel(
    fcoo: FCOOTensor,
    numeric_core: NumericCore,
    *,
    rank: int,
    output_width: int,
    flops_per_nnz_per_column: float,
    block_size: int,
    threadlen: int,
    fused: bool,
    cluster: ClusterLike,
    streamed: Optional[bool],
    num_streams: int,
    chunk_nnz: Optional[int],
    resident_bytes: float,
    output_bytes: float,
    name: str,
    reduction: str = "allreduce",
) -> Tuple[np.ndarray, KernelProfile]:
    """Sharded execution of a unified kernel given its numeric core.

    The per-shard shape is exactly the single-device kernel: a shard whose
    one-shot footprint fits its device runs the one-shot model; one that
    does not falls back to the PR 1 streamed path *on that device* (with
    the caller's ``streamed`` / ``num_streams`` / ``chunk_nnz`` controls
    forwarded unchanged).  All three unified kernels share this driver and
    differ only in the numeric core, widths and reduction kind.

    The numeric result is computed *once* from the full stream in the
    canonical in-order reduction (exactly what the single-device one-shot
    kernel produces), so it is bit-identical for every cluster shape — the
    shards model time and memory, never the numbers.
    """
    canonical = numeric_core(fcoo)[0] if fcoo.nnz else None

    def shard_kernel(shard: FCOOTensor, device: DeviceSpec):
        launch = LaunchConfig.for_nnz(
            max(shard.nnz, 1), rank, block_size=block_size, threadlen=threadlen
        )
        footprint = unified_device_footprint(shard, launch, resident_bytes, 0.0)
        if should_stream(shard, footprint, device, streamed):
            return streamed_unified_kernel(
                shard,
                numeric_core,
                rank=rank,
                output_width=output_width,
                flops_per_nnz_per_column=flops_per_nnz_per_column,
                block_size=block_size,
                threadlen=threadlen,
                fused=fused,
                device=device,
                num_streams=num_streams,
                chunk_nnz=chunk_nnz,
                resident_bytes=resident_bytes,
                name=name,
            )
        sums, row_streams = numeric_core(shard)
        counters = unified_kernel_counters(
            shard,
            row_streams,
            rank,
            output_rows=shard.num_segments,
            output_width=output_width,
            launch=launch,
            device=device,
            flops_per_nnz_per_column=flops_per_nnz_per_column,
            fused=fused,
        )
        profile = profile_from_counters(
            name, counters, launch, device, device_memory_bytes=footprint
        )
        return sums, profile

    return execute_sharded(
        fcoo,
        shard_kernel,
        cluster=cluster,
        threadlen=threadlen,
        output_bytes=output_bytes,
        reduction=reduction,
        name=name,
        output_width=output_width,
        canonical_sums=canonical,
    )
