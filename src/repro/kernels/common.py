"""Shared kernel plumbing: result containers and structural helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.cpusim.cpu import CpuProfile
from repro.formats.semisparse import SemiSparseTensor
from repro.gpusim.counters import KernelProfile

__all__ = [
    "SpTTMResult",
    "MTTKRPResult",
    "TTMcResult",
    "warp_group_imbalance",
    "chunked_imbalance",
    "validate_factor",
    "as_float32_matrix",
]

Profile = Union[KernelProfile, CpuProfile]


@dataclass
class SpTTMResult:
    """Output of an SpTTM kernel: the semi-sparse tensor plus its profile."""

    output: SemiSparseTensor
    profile: Profile

    @property
    def estimated_time_s(self) -> float:
        """Estimated execution time of the kernel on its target device."""
        return self.profile.estimated_time_s


@dataclass
class MTTKRPResult:
    """Output of an MTTKRP kernel: the dense factor update plus its profile."""

    output: np.ndarray
    profile: Profile

    @property
    def estimated_time_s(self) -> float:
        """Estimated execution time of the kernel on its target device."""
        return self.profile.estimated_time_s


@dataclass
class TTMcResult:
    """Output of a TTMc kernel: the unfolded result matrix plus its profile."""

    output: np.ndarray
    profile: Profile

    @property
    def estimated_time_s(self) -> float:
        """Estimated execution time of the kernel on its target device."""
        return self.profile.estimated_time_s


def warp_group_imbalance(work_per_unit: np.ndarray, group_size: int) -> float:
    """Load-imbalance factor of statically assigning work units to groups.

    Work units (e.g. fibers) are assigned to execution groups (e.g. warps)
    ``group_size`` at a time in their natural order; a group is busy for as
    long as its largest unit.  The returned factor is the ratio of the total
    *occupied* lane-time to the total useful work — exactly the slowdown a
    SIMT processor pays when lanes of a warp finish at different times.
    Returns 1.0 for perfectly uniform work.
    """
    work = np.asarray(work_per_unit, dtype=np.float64)
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    if work.size == 0:
        return 1.0
    if (work < 0).any():
        raise ValueError("work_per_unit entries must be non-negative")
    total = work.sum()
    if total == 0:
        return 1.0
    n_groups = -(-work.size // group_size)
    padded = np.zeros(n_groups * group_size, dtype=np.float64)
    padded[: work.size] = work
    groups = padded.reshape(n_groups, group_size)
    occupied = groups.max(axis=1).sum() * group_size
    return float(max(occupied / total, 1.0))


def chunked_imbalance(work_per_unit: np.ndarray, num_chunks: int) -> float:
    """Load-imbalance factor of static OpenMP-style chunking.

    Work units are split into ``num_chunks`` contiguous chunks (one per
    thread) in their natural order; each thread's time is the *sum* of its
    chunk (sequential execution, unlike the SIMT lockstep of
    :func:`warp_group_imbalance`) and the whole loop finishes when the
    busiest thread does.  Returns ``max(chunk sums) / mean(chunk sums)``.
    """
    work = np.asarray(work_per_unit, dtype=np.float64)
    if num_chunks <= 0:
        raise ValueError(f"num_chunks must be positive, got {num_chunks}")
    if work.size == 0:
        return 1.0
    if (work < 0).any():
        raise ValueError("work_per_unit entries must be non-negative")
    total = work.sum()
    if total == 0:
        return 1.0
    num_chunks = min(num_chunks, work.size)
    boundaries = np.linspace(0, work.size, num_chunks + 1).astype(np.int64)
    cumulative = np.concatenate(([0.0], np.cumsum(work)))
    chunk_sums = cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]
    mean = total / num_chunks
    return float(max(chunk_sums.max() / mean, 1.0))


def validate_factor(matrix: np.ndarray, expected_rows: int, name: str) -> np.ndarray:
    """Check a dense factor matrix and return it as float64."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be a 2-D matrix, got shape {matrix.shape}")
    if matrix.shape[0] != expected_rows:
        raise ValueError(
            f"{name} must have {expected_rows} rows to match the tensor mode, "
            f"got {matrix.shape[0]}"
        )
    return matrix


def as_float32_matrix(matrix: np.ndarray) -> np.ndarray:
    """Device-resident copy of a factor matrix (single precision, contiguous)."""
    return np.ascontiguousarray(np.asarray(matrix, dtype=np.float32))
