"""Shared utilities: validation, RNG handling, timing and text formatting.

These helpers are deliberately dependency-light so every other subpackage
(``tensor``, ``formats``, ``gpusim``, ``kernels``, ...) can rely on them
without creating import cycles.
"""

from repro.util.validation import (
    check_axis,
    check_mode,
    check_positive_int,
    check_rank,
    check_shape,
    normalize_modes,
)
from repro.util.rng import as_rng, spawn_rngs
from repro.util.timing import Timer
from repro.util.formatting import (
    format_bytes,
    format_seconds,
    format_table,
    format_speedup,
)

__all__ = [
    "check_axis",
    "check_mode",
    "check_positive_int",
    "check_rank",
    "check_shape",
    "normalize_modes",
    "as_rng",
    "spawn_rngs",
    "Timer",
    "format_bytes",
    "format_seconds",
    "format_table",
    "format_speedup",
]
