"""Random-number-generator plumbing.

Every stochastic entry point in the library accepts a ``seed`` argument which
may be ``None``, an integer, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_rng` normalises all three into a
``Generator`` so downstream code never touches the legacy ``RandomState`` API.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["as_rng", "spawn_rngs"]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a fresh nondeterministic generator, an ``int`` a
    deterministic one, and an existing ``Generator`` is passed through
    untouched (so callers can share one stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed).__name__}"
    )


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators from one seed.

    Used by workload generators that build several independent index streams
    (one per tensor mode) so that changing one mode's distribution does not
    perturb the others.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent's bit generator.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
