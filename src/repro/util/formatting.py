"""Plain-text rendering helpers for the benchmark harness.

The paper reports its evaluation as bar charts and line plots; this
reproduction regenerates the same rows/series as ASCII tables so the harness
has no plotting dependency and its output can be diffed in CI.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["format_bytes", "format_seconds", "format_speedup", "format_table"]

Cell = Union[str, int, float]


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-prefix unit (KiB/MiB/GiB)."""
    if num_bytes < 0:
        raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Render a duration using the most readable of s / ms / us."""
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_speedup(speedup: float) -> str:
    """Render a speedup factor in the paper's ``N.Nx`` style."""
    return f"{speedup:.1f}x"


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: str = "",
) -> str:
    """Render a list of rows as a monospaced table.

    Column widths are computed from the data; every cell is left-aligned for
    strings and right-aligned for numbers, matching how the paper's tables
    read.
    """
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = []
    numeric: List[bool] = [True] * len(header_cells)
    for row in rows:
        row = list(row)
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_cells)} columns"
            )
        rendered = [_render_cell(c) for c in row]
        for i, c in enumerate(row):
            if not isinstance(c, (int, float)) or isinstance(c, bool):
                numeric[i] = False
        body.append(rendered)

    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i] and cells is not header_cells:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    sep = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(header_cells))
    lines.append(sep)
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)
