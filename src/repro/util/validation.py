"""Argument validation helpers used across the library.

All validators raise :class:`ValueError` or :class:`TypeError` with messages
that name the offending argument, so kernel- and format-level code can stay
free of repetitive checking boilerplate.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "check_shape",
    "check_mode",
    "check_axis",
    "check_rank",
    "check_positive_int",
    "check_non_negative_int",
    "normalize_modes",
]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    Accepts NumPy integer scalars as well as Python ints; rejects bools.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it as ``int``.

    Like :func:`check_positive_int` but admits zero (e.g. an empty
    workload is a legitimate serving run).
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_shape(shape: Sequence[int], *, min_order: int = 1) -> Tuple[int, ...]:
    """Validate a tensor shape and return it as a tuple of positive ints.

    Parameters
    ----------
    shape:
        Any sequence of dimension sizes.
    min_order:
        Minimum number of modes the shape must have.
    """
    try:
        dims = tuple(int(s) for s in shape)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"shape must be a sequence of integers, got {shape!r}") from exc
    if len(dims) < min_order:
        raise ValueError(
            f"tensor order must be at least {min_order}, got shape {dims} of order {len(dims)}"
        )
    for i, s in enumerate(dims):
        if s <= 0:
            raise ValueError(f"shape[{i}] must be positive, got {s}")
    return dims


def check_mode(mode: int, order: int, *, name: str = "mode") -> int:
    """Validate a 0-based mode index against a tensor order.

    The public API of this library uses 0-based modes (mode 0 is the paper's
    mode-1).  Negative modes are supported with NumPy semantics.
    """
    if isinstance(mode, bool) or not isinstance(mode, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(mode).__name__}")
    mode = int(mode)
    if mode < 0:
        mode += order
    if not 0 <= mode < order:
        raise ValueError(f"{name} must be in [0, {order}), got {mode}")
    return mode


def check_axis(axis: int, ndim: int, *, name: str = "axis") -> int:
    """Alias of :func:`check_mode` with matrix/array vocabulary."""
    return check_mode(axis, ndim, name=name)


def check_rank(rank: int, *, name: str = "rank") -> int:
    """Validate a decomposition rank (number of factor-matrix columns)."""
    return check_positive_int(rank, name)


def normalize_modes(modes: Iterable[int], order: int) -> Tuple[int, ...]:
    """Validate an iterable of modes and return them sorted and de-duplicated."""
    out = sorted({check_mode(m, order) for m in modes})
    if not out:
        raise ValueError("at least one mode must be given")
    return tuple(out)
