"""Small wall-clock timing helper used by the benchmark harness.

The performance *results* reported by this reproduction come from the
simulated device models in :mod:`repro.gpusim` and :mod:`repro.cpusim`
(deterministic cost accounting), not from host wall-clock time.  ``Timer``
exists for the pytest-benchmark harness and for users profiling the Python
implementation itself, following the "no optimisation without measuring"
workflow of the scientific-python optimisation guide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating wall-clock timer with named laps.

    Example
    -------
    >>> t = Timer()
    >>> with t.lap("encode"):
    ...     pass
    >>> "encode" in t.laps
    True
    """

    laps: Dict[str, float] = field(default_factory=dict)
    _order: List[str] = field(default_factory=list)

    class _Lap:
        def __init__(self, timer: "Timer", name: str):
            self._timer = timer
            self._name = name
            self._start: Optional[float] = None

        def __enter__(self) -> "Timer._Lap":
            self._start = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc, tb) -> None:
            assert self._start is not None
            elapsed = time.perf_counter() - self._start
            self._timer.add(self._name, elapsed)

    def lap(self, name: str) -> "Timer._Lap":
        """Return a context manager that accumulates elapsed time under ``name``."""
        return Timer._Lap(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to lap ``name`` (creating it if needed)."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        if name not in self.laps:
            self._order.append(name)
            self.laps[name] = 0.0
        self.laps[name] += float(seconds)

    @property
    def total(self) -> float:
        """Sum of all lap times in seconds."""
        return float(sum(self.laps.values()))

    def as_dict(self) -> Dict[str, float]:
        """Return lap times in insertion order."""
        return {name: self.laps[name] for name in self._order}
