"""The unified execution-context API (`ExecContext`) and SLO classes.

Six PRs of growth threaded the same execution knobs — ``streamed=``,
``num_streams=``, ``chunk_nnz=``, ``cluster=``, ``devices=``, ``chaos=``,
``preproc_cache=``, ``overlap_modes=`` — through every unified kernel and
both decomposition drivers as loose keyword arguments.  This module bundles
them into one frozen :class:`ExecContext` that every entry point accepts as
``ctx=``:

>>> from repro import ExecContext, unified_spmttkrp
>>> ctx = ExecContext(streamed=True, num_streams=4)
>>> result = unified_spmttkrp(tensor, factors, mode=0, ctx=ctx)  # doctest: +SKIP

The legacy kwargs remain as *deprecated aliases*: passing one still works
(it overrides the corresponding ``ctx`` field), but emits a
:class:`DeprecationWarning` once per call site/parameter pair.  Equivalence
between the two spellings is covered by ``tests/test_slo.py``.

The module also defines:

* :class:`SLO` — a per-job service-level objective (latency deadline,
  priority class, preemptibility) consumed by the serving scheduler's
  deadline-aware policy;
* :class:`TimedResult` — the common protocol (``makespan_s`` /
  ``timeline`` / ``recoveries`` / ``preemptions``) implemented by
  ``CPResult``, ``TuckerResult`` and ``ScheduleOutcome``, so generic
  tooling (``--trace``, bench regression) stops special-casing each
  result type.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.gpusim.cluster import ClusterLike, NodeFailure
    from repro.gpusim.timeline import Timeline
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SLO",
    "ExecContext",
    "DEFAULT_CONTEXT",
    "TimedResult",
    "resolve_context",
    "reset_deprecation_registry",
    "UNSET",
]

#: Sentinel distinguishing "legacy kwarg not passed" from an explicit value
#: (``None`` and falsy values are all meaningful for these parameters).
UNSET: Any = object()


# ---------------------------------------------------------------------- #
# SLO classes
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SLO:
    """A per-job service-level objective.

    Attributes
    ----------
    deadline_s:
        Latency budget relative to the job's arrival (simulated seconds);
        ``None`` means the job has no deadline (a pure batch job).
    priority:
        Priority class, lower is more urgent (matches ``Job.priority``).
    preemptible:
        Whether the scheduler's deadline-aware policy may preempt this
        job at a chunk boundary to make room for a latency-class job.
        Latency-class jobs default to non-preemptible.
    """

    deadline_s: Optional[float] = None
    priority: int = 1
    preemptible: bool = True

    def __post_init__(self) -> None:
        if self.deadline_s is not None and (
            not math.isfinite(self.deadline_s) or self.deadline_s <= 0.0
        ):
            raise ValueError(
                f"deadline_s must be a finite positive latency budget or None, "
                f"got {self.deadline_s}"
            )
        if self.priority < 0:
            raise ValueError(f"priority must be non-negative, got {self.priority}")

    @classmethod
    def latency(cls, deadline_s: float, *, priority: int = 0) -> "SLO":
        """A latency-class SLO: hard deadline, urgent, never preempted."""
        return cls(deadline_s=deadline_s, priority=priority, preemptible=False)

    @classmethod
    def batch(cls, *, priority: int = 1) -> "SLO":
        """A batch-class SLO: no deadline, preemptible."""
        return cls(deadline_s=None, priority=priority, preemptible=True)

    @property
    def has_deadline(self) -> bool:
        """Whether this SLO carries a latency deadline."""
        return self.deadline_s is not None

    def deadline_for(self, arrival_s: float) -> float:
        """Absolute deadline for a job arriving at ``arrival_s`` (inf if none)."""
        if self.deadline_s is None:
            return math.inf
        return arrival_s + self.deadline_s


# ---------------------------------------------------------------------- #
# ExecContext
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecContext:
    """Bundled execution knobs for the unified kernels and decompositions.

    Every field mirrors a formerly loose keyword argument (see the module
    docstring); ``slo`` and ``overlap_staging`` are new in PR 7.

    Attributes
    ----------
    streamed:
        Force (``True``) / forbid (``False``) the out-of-core streamed
        path; ``None`` decides by device footprint.
    num_streams:
        CUDA streams / pipeline buffers for the streamed path.
    chunk_nnz:
        Override the streamed path's chunk size (non-zeros per chunk).
    cluster:
        Multi-GPU topology (:class:`~repro.gpusim.cluster.ClusterSpec` or
        :class:`~repro.gpusim.cluster.MultiNodeClusterSpec`).
    devices:
        Shorthand for a flat homogeneous cluster of this many devices.
    chaos:
        Scripted :class:`~repro.gpusim.cluster.NodeFailure` events for the
        decomposition drivers' checkpoint/replay path.
    preproc_cache:
        A :class:`~repro.serve.PreprocCache` shared across calls.
    overlap_modes:
        CP-ALS: overlap each mode's all-reduce with the next mode's
        kernels (PR 5).
    overlap_staging:
        CP-ALS on a sharded cluster: stage each mode's shards on the
        per-device copy engines during the first sweep, overlapped with
        the previous mode's reduction, instead of charging all staging
        serially in engine setup (closes the ROADMAP carried item; off by
        default so modeled seconds of existing runs are unchanged).
    backend:
        The numeric-execution backend (:mod:`repro.backends`): a registry
        name (``"reference"`` / ``"vectorized"``), a
        :class:`~repro.backends.base.Backend` instance, or ``None`` to
        consult the ``REPRO_BACKEND`` environment variable (default
        ``"reference"``).  Backends are bit-identical by contract, so this
        changes wall-clock speed only — never results or modeled seconds.
    slo:
        The job-level :class:`SLO`, carried for serving-layer consumers.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry`.  When set,
        the unified kernels, streamed/sharded drivers, and decomposition
        algorithms publish launch counters and modeled-time histograms
        into it (observation-only: modeled seconds never change).  The
        serving engine threads its per-run registry through here so every
        layer a job touches reports into one place.
    nic_policy:
        NIC queue discipline for collectives under contention (one of
        :data:`~repro.gpusim.timeline.NIC_POLICIES`): ``"fifo"`` — the
        default, bookings serve in arrival order — or ``"fair"`` /
        ``"priority"``, which let the serving scheduler reorder queued
        (never in-flight) collectives.  Disciplines only move modeled
        time; numerics are policy-independent by construction.
    """

    streamed: Optional[bool] = None
    num_streams: int = 2
    chunk_nnz: Optional[int] = None
    cluster: Optional["ClusterLike"] = None
    devices: Optional[int] = None
    chaos: Optional[Tuple["NodeFailure", ...]] = None
    preproc_cache: Optional[Any] = None
    overlap_modes: bool = False
    overlap_staging: bool = False
    backend: Optional[Any] = None
    slo: Optional[SLO] = None
    metrics: Optional["MetricsRegistry"] = None
    nic_policy: str = "fifo"

    def __post_init__(self) -> None:
        if self.backend is not None:
            # Validate eagerly so a typo'd name fails at construction, not
            # deep inside a kernel.  (Lazy import: backends -> gpusim only.)
            from repro.backends import get_backend

            get_backend(self.backend)
        if self.num_streams < 1:
            raise ValueError(f"num_streams must be >= 1, got {self.num_streams}")
        if self.chunk_nnz is not None and self.chunk_nnz < 1:
            raise ValueError(f"chunk_nnz must be >= 1 or None, got {self.chunk_nnz}")
        if self.devices is not None and self.devices < 1:
            raise ValueError(f"devices must be >= 1 or None, got {self.devices}")
        if self.chaos is not None and not isinstance(self.chaos, tuple):
            # Normalise any sequence of failures to a tuple so the context
            # stays hashable/frozen-safe.
            object.__setattr__(self, "chaos", tuple(self.chaos))
        from repro.gpusim.timeline import NIC_POLICIES

        if self.nic_policy not in NIC_POLICIES:
            raise ValueError(
                f"nic_policy must be one of {NIC_POLICIES}, got {self.nic_policy!r}"
            )

    def evolve(self, **changes: Any) -> "ExecContext":
        """A copy with ``changes`` applied (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)


#: The all-defaults context; what a call without ``ctx=`` resolves to.
DEFAULT_CONTEXT = ExecContext()


# ---------------------------------------------------------------------- #
# Deprecated-alias plumbing
# ---------------------------------------------------------------------- #
_WARNED: Set[Tuple[str, str]] = set()


def reset_deprecation_registry() -> None:
    """Forget which deprecated aliases already warned (test hook)."""
    _WARNED.clear()


def _warn_legacy(func: str, param: str) -> None:
    if (func, param) in _WARNED:
        return
    _WARNED.add((func, param))
    warnings.warn(
        f"{func}({param}=...) is deprecated; pass ctx=ExecContext({param}=...) "
        f"instead (the legacy kwarg still works and overrides the context)",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_context(
    func: str, ctx: Optional[ExecContext], **legacy: Any
) -> ExecContext:
    """Fold deprecated legacy kwargs into an effective :class:`ExecContext`.

    ``legacy`` maps field names to the value the caller passed, or
    :data:`UNSET` when the parameter was left at its default.  Explicitly
    passed legacy values override the matching ``ctx`` field and warn once
    per ``(func, field)`` pair; with no legacy values and no ``ctx`` the
    result is :data:`DEFAULT_CONTEXT`.
    """
    base = ctx if ctx is not None else DEFAULT_CONTEXT
    overrides: Dict[str, Any] = {}
    for name, value in legacy.items():
        if value is UNSET:
            continue
        _warn_legacy(func, name)
        overrides[name] = value
    return replace(base, **overrides) if overrides else base


# ---------------------------------------------------------------------- #
# The common result surface
# ---------------------------------------------------------------------- #
@runtime_checkable
class TimedResult(Protocol):
    """What every timed result exposes, whatever layer produced it.

    Implemented by :class:`~repro.algorithms.cp.CPResult`,
    :class:`~repro.algorithms.tucker.TuckerResult` and
    :class:`~repro.serve.ScheduleOutcome` (and, by delegation,
    :class:`~repro.serve.ServingReport`): a makespan in simulated seconds,
    the :class:`~repro.gpusim.timeline.Timeline` the run booked (``None``
    when untimed), the fault recoveries that fired, and the preemptions
    the run suffered.  Generic consumers — ``--trace`` export, the bench
    regression harness — program against this protocol instead of
    special-casing each concrete type.
    """

    @property
    def makespan_s(self) -> float: ...

    @property
    def timeline(self) -> Optional["Timeline"]: ...

    @property
    def recoveries(self) -> Sequence[Any]: ...

    @property
    def preemptions(self) -> Sequence[Any]: ...
