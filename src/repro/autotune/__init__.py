"""Launch-parameter auto-tuning (paper Figure 5 and Table V).

The unified kernels have two tunables: ``BLOCK_SIZE`` (threads per block)
and ``threadlen`` (non-zeros per thread).  Their best values depend on the
sparsity pattern of the tensor, so the paper sweeps both per dataset and per
operation; this subpackage reproduces that sweep on the simulated device.
"""

from repro.autotune.tuner import TuningResult, tune_unified, DEFAULT_BLOCK_SIZES, DEFAULT_THREADLENS

__all__ = ["TuningResult", "tune_unified", "DEFAULT_BLOCK_SIZES", "DEFAULT_THREADLENS"]
