"""Launch-parameter auto-tuning (paper Figure 5 and Table V).

The unified kernels have two classic tunables: ``BLOCK_SIZE`` (threads per
block) and ``threadlen`` (non-zeros per thread).  Their best values depend
on the sparsity pattern of the tensor, so the paper sweeps both per dataset
and per operation; this subpackage reproduces that sweep on the simulated
device.  The out-of-core streamed execution path adds two further axes —
``num_streams`` and the chunk size — and the multi-GPU sharded path adds a
device-count axis; the sweep covers all of them.
"""

from repro.autotune.tuner import (
    DEFAULT_BLOCK_SIZES,
    DEFAULT_CHUNK_SIZES,
    DEFAULT_DEVICE_COUNTS,
    DEFAULT_NUM_STREAMS,
    DEFAULT_THREADLENS,
    TuningResult,
    tune_unified,
)

__all__ = [
    "TuningResult",
    "tune_unified",
    "DEFAULT_BLOCK_SIZES",
    "DEFAULT_THREADLENS",
    "DEFAULT_NUM_STREAMS",
    "DEFAULT_CHUNK_SIZES",
    "DEFAULT_DEVICE_COUNTS",
]
