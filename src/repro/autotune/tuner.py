"""Exhaustive sweep of the unified kernels' tuning parameters.

The paper's Figure 5 sweeps the launch parameters ``(BLOCK_SIZE,
threadlen)``; the out-of-core streamed execution path adds two more axes —
the number of CUDA streams and the chunk size — which matter whenever the
tensor is (or is forced) out-of-core, and the multi-GPU sharded path adds a
device-count axis.  The sweep covers the full cross product; the classic
two-parameter surface is the minimum over the streaming and device axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.context import ExecContext
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import ClusterSpec, InterconnectSpec, PCIE3_P2P
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timing import OutOfDeviceMemory
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.kernels.unified.spttmc import unified_spttmc
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor
from repro.util.formatting import format_table
from repro.util.rng import SeedLike
from repro.util.validation import check_mode, check_rank

__all__ = [
    "TuningResult",
    "tune_unified",
    "DEFAULT_BLOCK_SIZES",
    "DEFAULT_THREADLENS",
    "DEFAULT_NUM_STREAMS",
    "DEFAULT_CHUNK_SIZES",
    "DEFAULT_DEVICE_COUNTS",
]

#: The sweep ranges used in the paper's Figure 5.
DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024)
DEFAULT_THREADLENS: Tuple[int, ...] = (8, 16, 32, 48, 64)

#: Default streaming axes: a single auto-sized configuration, so the classic
#: two-parameter sweep stays exactly as cheap as before.
DEFAULT_NUM_STREAMS: Tuple[int, ...] = (2,)
DEFAULT_CHUNK_SIZES: Tuple[Optional[int], ...] = (None,)

#: Default device-count axis: single-GPU, so the classic sweep is unchanged.
DEFAULT_DEVICE_COUNTS: Tuple[int, ...] = (1,)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a launch-parameter sweep.

    Attributes
    ----------
    operation / mode / rank:
        What was tuned.
    block_sizes / threadlens:
        The classic launch-parameter axes.
    num_streams / chunk_sizes:
        The streaming axes (singletons unless the sweep explored the
        out-of-core configuration space; ``None`` chunk size means
        auto-sized to the device memory budget).
    device_counts:
        The multi-GPU axis (a singleton ``(1,)`` unless the sweep explored
        sharded execution across a simulated cluster).
    times_grid:
        ``(len(block_sizes), len(threadlens), len(num_streams),
        len(chunk_sizes), len(device_counts))`` array of simulated times.
    """

    operation: OperationKind
    mode: int
    rank: int
    block_sizes: Tuple[int, ...]
    threadlens: Tuple[int, ...]
    num_streams: Tuple[int, ...]
    chunk_sizes: Tuple[Optional[int], ...]
    times_grid: np.ndarray
    device_counts: Tuple[int, ...] = (1,)

    # ------------------------------------------------------------------ #
    @property
    def times_full(self) -> np.ndarray:
        """The 4-D ``(BLOCK_SIZE, threadlen, num_streams, chunk)`` surface
        (best over the device-count axis)."""
        return self.times_grid.min(axis=4)

    @property
    def times(self) -> np.ndarray:
        """The ``(BLOCK_SIZE, threadlen)`` surface (best over the other axes)."""
        return self.times_grid.min(axis=(2, 3, 4))

    @property
    def best(self) -> Tuple[int, int]:
        """The ``(BLOCK_SIZE, threadlen)`` pair with the lowest simulated time."""
        i, j = np.unravel_index(int(np.argmin(self.times)), self.times.shape)
        return self.block_sizes[i], self.threadlens[j]

    @property
    def best_config(self) -> Tuple[int, int, int, Optional[int]]:
        """The ``(BLOCK_SIZE, threadlen, num_streams, chunk_nnz)`` optimum."""
        i, j, s, c = np.unravel_index(
            int(np.argmin(self.times_full)), self.times_full.shape
        )
        return (
            self.block_sizes[i],
            self.threadlens[j],
            self.num_streams[s],
            self.chunk_sizes[c],
        )

    @property
    def best_full_config(self) -> Tuple[int, int, int, Optional[int], int]:
        """The full optimum including the device count."""
        i, j, s, c, d = np.unravel_index(
            int(np.argmin(self.times_grid)), self.times_grid.shape
        )
        return (
            self.block_sizes[i],
            self.threadlens[j],
            self.num_streams[s],
            self.chunk_sizes[c],
            self.device_counts[d],
        )

    @property
    def best_time(self) -> float:
        """The lowest simulated time over the sweep."""
        return float(self.times_grid.min())

    def render(self, *, title: str = "") -> str:
        """ASCII rendering of the sweep surface (rows: BLOCK_SIZE, cols: threadlen)."""
        headers = ["BLOCK_SIZE \\ threadlen"] + [str(t) for t in self.threadlens]
        times = self.times
        rows = []
        for i, bs in enumerate(self.block_sizes):
            rows.append([bs] + [float(times[i, j]) for j in range(len(self.threadlens))])
        text = format_table(
            headers, rows, title=title or f"{self.operation.value} tuning surface (s)"
        )
        if len(self.num_streams) > 1 or len(self.chunk_sizes) > 1:
            bs, tl, ns, cn = self.best_config
            text += (
                f"\nbest streaming configuration: num_streams={ns}, "
                f"chunk_nnz={'auto' if cn is None else cn} "
                f"(at BLOCK_SIZE={bs}, threadlen={tl})"
            )
        if len(self.device_counts) > 1:
            bs, tl, _ns, _cn, dc = self.best_full_config
            text += (
                f"\nbest device count: {dc} GPU(s) "
                f"(at BLOCK_SIZE={bs}, threadlen={tl})"
            )
        return text


def tune_unified(
    tensor: SparseTensor,
    operation: Union[OperationKind, str],
    mode: int,
    *,
    rank: int = 16,
    device: DeviceSpec = TITAN_X,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    threadlens: Sequence[int] = DEFAULT_THREADLENS,
    num_streams: Sequence[int] = DEFAULT_NUM_STREAMS,
    chunk_sizes: Sequence[Optional[int]] = DEFAULT_CHUNK_SIZES,
    device_counts: Sequence[int] = DEFAULT_DEVICE_COUNTS,
    interconnect: InterconnectSpec = PCIE3_P2P,
    streamed: Optional[bool] = None,
    seed: SeedLike = 0,
) -> TuningResult:
    """Sweep the unified-kernel tuning parameters on one tensor.

    Covers all three unified kernels (SpTTM, SpMTTKRP, SpTTMc).  The F-COO
    encoding is reused across the sweep (it does not depend on the launch
    parameters) so the sweep cost is dominated by the kernel model itself.

    ``num_streams`` / ``chunk_sizes`` extend the sweep with the streamed
    execution axes; they only influence the result when the kernel actually
    streams (``streamed=True``, or auto-fallback on an over-capacity
    tensor).  ``device_counts`` extends it with the multi-GPU axis: a count
    above one shards the kernel across a homogeneous cluster of ``device``
    joined by ``interconnect``.  ``streamed`` is forwarded to the kernels
    unchanged.  A configuration that does not fit on the device (its chunk
    buffers exceed capacity) is recorded as ``inf`` rather than aborting
    the sweep.
    """
    operation = OperationKind.coerce(operation)
    mode = check_mode(mode, tensor.order)
    rank = check_rank(rank)
    if not num_streams:
        raise ValueError("num_streams must contain at least one entry")
    if not chunk_sizes:
        raise ValueError("chunk_sizes must contain at least one entry")
    if not device_counts:
        raise ValueError("device_counts must contain at least one entry")
    factors = random_factors(tensor.shape, rank, seed=seed)
    fcoo = FCOOTensor.from_sparse(tensor, operation, mode)

    clusters = {
        int(d): (
            None
            if int(d) <= 1
            else ClusterSpec.homogeneous(device, int(d), interconnect=interconnect)
        )
        for d in device_counts
    }
    times = np.zeros(
        (
            len(block_sizes),
            len(threadlens),
            len(num_streams),
            len(chunk_sizes),
            len(device_counts),
        ),
        dtype=np.float64,
    )

    def run_cell(block_size, threadlen, n_streams, chunk_nnz, n_devices):
        kwargs = dict(
            device=device,
            block_size=int(block_size),
            threadlen=int(threadlen),
            ctx=ExecContext(
                streamed=streamed,
                num_streams=int(n_streams),
                chunk_nnz=None if chunk_nnz is None else int(chunk_nnz),
                cluster=clusters[int(n_devices)],
            ),
        )
        if operation is OperationKind.SPTTM:
            return unified_spttm(fcoo, factors[mode], mode, **kwargs)
        if operation is OperationKind.SPMTTKRP:
            return unified_spmttkrp(fcoo, factors, mode, **kwargs)
        return unified_spttmc(fcoo, factors, mode, **kwargs)

    def streaming_axes_matter(result) -> bool:
        """Whether num_streams / chunk_nnz can influence this cell's time."""
        if streamed is True:
            return True
        if result.profile.streaming is not None:
            return True
        execution = getattr(result.profile, "sharded", None)
        return execution is not None and execution.has_streaming_shards

    for i, block_size in enumerate(block_sizes):
        for j, threadlen in enumerate(threadlens):
            for d, n_devices in enumerate(device_counts):
                first = None
                try:
                    first = run_cell(
                        block_size, threadlen, num_streams[0], chunk_sizes[0], n_devices
                    )
                    times[i, j, 0, 0, d] = first.estimated_time_s
                except OutOfDeviceMemory:
                    # Infeasible configuration (e.g. num_streams chunk
                    # buffers exceed capacity): record it, keep sweeping.
                    times[i, j, 0, 0, d] = np.inf
                if first is not None and not streaming_axes_matter(first):
                    # The kernel never streamed, so the streaming axes
                    # cannot change the outcome — broadcast instead of
                    # re-running the full kernel numerics per cell.
                    times[i, j, :, :, d] = first.estimated_time_s
                    continue
                for s, n_streams in enumerate(num_streams):
                    for c, chunk_nnz in enumerate(chunk_sizes):
                        if (s, c) == (0, 0):
                            continue
                        try:
                            times[i, j, s, c, d] = run_cell(
                                block_size, threadlen, n_streams, chunk_nnz, n_devices
                            ).estimated_time_s
                        except OutOfDeviceMemory:
                            times[i, j, s, c, d] = np.inf

    return TuningResult(
        operation=operation,
        mode=mode,
        rank=rank,
        block_sizes=tuple(int(b) for b in block_sizes),
        threadlens=tuple(int(t) for t in threadlens),
        num_streams=tuple(int(n) for n in num_streams),
        chunk_sizes=tuple(None if c is None else int(c) for c in chunk_sizes),
        times_grid=times,
        device_counts=tuple(int(d) for d in device_counts),
    )
