"""Exhaustive sweep of (BLOCK_SIZE, threadlen) for the unified kernels."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.kernels.unified.spmttkrp import unified_spmttkrp
from repro.kernels.unified.spttm import unified_spttm
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor
from repro.util.formatting import format_table
from repro.util.rng import SeedLike
from repro.util.validation import check_mode, check_rank

__all__ = ["TuningResult", "tune_unified", "DEFAULT_BLOCK_SIZES", "DEFAULT_THREADLENS"]

#: The sweep ranges used in the paper's Figure 5.
DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (32, 64, 128, 256, 512, 1024)
DEFAULT_THREADLENS: Tuple[int, ...] = (8, 16, 32, 48, 64)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a launch-parameter sweep.

    Attributes
    ----------
    operation / mode / rank:
        What was tuned.
    block_sizes / threadlens:
        The sweep axes.
    times:
        ``(len(block_sizes), len(threadlens))`` array of simulated times.
    """

    operation: OperationKind
    mode: int
    rank: int
    block_sizes: Tuple[int, ...]
    threadlens: Tuple[int, ...]
    times: np.ndarray

    @property
    def best(self) -> Tuple[int, int]:
        """The ``(BLOCK_SIZE, threadlen)`` pair with the lowest simulated time."""
        i, j = np.unravel_index(int(np.argmin(self.times)), self.times.shape)
        return self.block_sizes[i], self.threadlens[j]

    @property
    def best_time(self) -> float:
        """The lowest simulated time over the sweep."""
        return float(self.times.min())

    def render(self, *, title: str = "") -> str:
        """ASCII rendering of the sweep surface (rows: BLOCK_SIZE, cols: threadlen)."""
        headers = ["BLOCK_SIZE \\ threadlen"] + [str(t) for t in self.threadlens]
        rows = []
        for i, bs in enumerate(self.block_sizes):
            rows.append([bs] + [float(self.times[i, j]) for j in range(len(self.threadlens))])
        return format_table(headers, rows, title=title or f"{self.operation.value} tuning surface (s)")


def tune_unified(
    tensor: SparseTensor,
    operation: Union[OperationKind, str],
    mode: int,
    *,
    rank: int = 16,
    device: DeviceSpec = TITAN_X,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    threadlens: Sequence[int] = DEFAULT_THREADLENS,
    seed: SeedLike = 0,
) -> TuningResult:
    """Sweep (BLOCK_SIZE, threadlen) for a unified kernel on one tensor.

    The F-COO encoding is reused across the sweep (it does not depend on the
    launch parameters) so the sweep cost is dominated by the kernel model
    itself.
    """
    operation = OperationKind.coerce(operation)
    mode = check_mode(mode, tensor.order)
    rank = check_rank(rank)
    if operation not in (OperationKind.SPTTM, OperationKind.SPMTTKRP):
        raise ValueError(f"tuning is implemented for SpTTM and SpMTTKRP, not {operation.value}")
    factors = random_factors(tensor.shape, rank, seed=seed)
    fcoo = FCOOTensor.from_sparse(tensor, operation, mode)

    times = np.zeros((len(block_sizes), len(threadlens)), dtype=np.float64)
    for i, block_size in enumerate(block_sizes):
        for j, threadlen in enumerate(threadlens):
            if operation is OperationKind.SPTTM:
                result = unified_spttm(
                    fcoo,
                    factors[mode],
                    mode,
                    device=device,
                    block_size=int(block_size),
                    threadlen=int(threadlen),
                )
            else:
                result = unified_spmttkrp(
                    fcoo,
                    factors,
                    mode,
                    device=device,
                    block_size=int(block_size),
                    threadlen=int(threadlen),
                )
            times[i, j] = result.estimated_time_s

    return TuningResult(
        operation=operation,
        mode=mode,
        rank=rank,
        block_sizes=tuple(int(b) for b in block_sizes),
        threadlens=tuple(int(t) for t in threadlens),
        times=times,
    )
