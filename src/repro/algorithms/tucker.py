"""Tucker decomposition via HOOI, built on the unified SpTTMc kernel.

The paper notes (Section IV-D) that the same unified approach implements the
Tucker decomposition, whose bottleneck kernel is the tensor-times-matrix
chain (TTMc, Equation 4).  HOOI (Higher-Order Orthogonal Iteration)
alternates over the modes: for mode ``n`` it forms ``Y = X ×_{m≠n} U_mᵀ``
and takes the leading ``R_n`` left singular vectors of the mode-``n``
unfolding of ``Y`` as the new factor.  The core tensor is recovered at the
end as ``G = X ×_0 U_0ᵀ ×_1 U_1ᵀ ···``.

This module is the "extension" deliverable: it exercises
:func:`repro.kernels.unified.spttmc.unified_spttmc` inside a complete
algorithm and provides the fit metric used by its tests and example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.cp import RecoveryRecord
from repro.backends import get_backend
from repro.context import UNSET, ExecContext, resolve_context
from repro.formats.fcoo import FCOOTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import MultiNodeClusterSpec, NodeFailure, resolve_cluster
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timeline import Timeline, device_compute_key
from repro.kernels.unified.sharded import ShardedTimeline, plan_node_recovery
from repro.kernels.unified.spttmc import unified_spttmc
from repro.obs.metrics import observe_decomposition
from repro.tensor.sparse import SparseTensor
from repro.util.rng import SeedLike, as_rng
from repro.util.validation import check_positive_int

__all__ = ["TuckerResult", "tucker_hooi"]


@dataclass
class TuckerResult:
    """Result of a HOOI Tucker decomposition.

    Attributes
    ----------
    core:
        Dense core tensor of shape ``ranks``.
    factors:
        One orthonormal ``(I_m, R_m)`` factor per mode.
    fits:
        Fit value after each iteration.
    iterations:
        Iterations executed.
    ttmc_time_by_mode:
        Total simulated SpTTMc seconds per mode.
    preproc_time_s:
        Host seconds of preprocessing-cache *misses* (F-COO encodes) when
        the decomposition ran with a ``preproc_cache``; 0 otherwise.  Kept
        separate from the kernel times, mirroring how the CP engine
        charges encode misses into its setup rather than its iterations.
    device_time_by_device:
        Per-device busy seconds of the whole decomposition when the TTMcs
        ran in multi-GPU mode (``None`` otherwise).
    parallel_efficiency:
        Cluster busy fraction over the sharded TTMc makespans, in
        ``(0, 1]`` (``None`` for single-GPU runs).
    makespan_s:
        Modeled completion time of the kernel work on the unified
        timeline: each sweep's SpTTMc computes book the per-device compute
        engines and their all-reduces book the cluster's link/NIC
        resources, sequentially — HOOI's SVD consumes the *fully* reduced
        unfolding, so (unlike CP-ALS's solve) there is no dense phase to
        hide a collective behind.  Equals :attr:`total_time_s` up to float
        association.
    timeline:
        The :class:`~repro.gpusim.timeline.Timeline` those bookings landed
        on (queryable; Chrome-trace exportable).
    recoveries:
        One :class:`~repro.algorithms.cp.RecoveryRecord` per node loss
        survived mid-run (empty for failure-free runs).
    recovery_overhead_s:
        Total modeled re-staging seconds across all recoveries; the
        replayed sweeps' kernel cost lands in the ordinary ledgers.
    preemptions:
        Always empty for a standalone decomposition; present so
        :class:`TuckerResult` satisfies the
        :class:`~repro.context.TimedResult` protocol.
    """

    core: np.ndarray
    factors: List[np.ndarray]
    fits: List[float]
    iterations: int
    ttmc_time_by_mode: Dict[int, float]
    device_time_by_device: Optional[Dict[int, float]] = None
    parallel_efficiency: Optional[float] = None
    preproc_time_s: float = 0.0
    makespan_s: Optional[float] = None
    timeline: Optional[Timeline] = None
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    recovery_overhead_s: float = 0.0
    preemptions: List[object] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Total simulated kernel time."""
        return sum(self.ttmc_time_by_mode.values())

    @property
    def final_fit(self) -> Optional[float]:
        """Fit after the last iteration (``None`` when no iterations ran)."""
        return self.fits[-1] if self.fits else None


def tucker_hooi(
    tensor: SparseTensor,
    ranks: Sequence[int],
    *,
    device: DeviceSpec = TITAN_X,
    max_iterations: int = 5,
    tolerance: float = 1e-5,
    seed: SeedLike = 0,
    block_size: int = 128,
    threadlen: int = 8,
    cluster: Any = UNSET,
    devices: Any = UNSET,
    preproc_cache: Any = UNSET,
    chaos: Any = UNSET,
    ctx: Optional[ExecContext] = None,
) -> TuckerResult:
    """Tucker decomposition of a sparse tensor via HOOI on the unified kernels.

    Parameters
    ----------
    tensor:
        Sparse input tensor.
    ranks:
        Target multilinear rank, one entry per mode (each at most the mode
        size).
    device, block_size, threadlen:
        Passed to the unified SpTTMc kernel.
    max_iterations / tolerance:
        HOOI sweep limit and fit-improvement stopping threshold.
    seed:
        Seed for the random orthonormal initial factors.
    cluster / devices:
        Multi-GPU controls forwarded to every SpTTMc (see
        :func:`repro.kernels.unified.spttmc.unified_spttmc`); the result
        then reports per-device timelines and scaling efficiency.
    preproc_cache:
        Optional :class:`~repro.serve.cache.PreprocCache` (any object with
        its ``encoding(tensor, operation, mode)`` protocol).  When given,
        each sweep's SpTTMc obtains its per-mode F-COO encoding through the
        cache instead of re-encoding the tensor inside the kernel — within
        one decomposition every sweep past the first hits, and across
        serving jobs repeat tenants share the entries.
    chaos:
        Optional :class:`~repro.gpusim.cluster.NodeFailure` events to
        survive, with the same semantics as :func:`~repro.algorithms.cp.cp_als`:
        a failure fires at the first TTMc boundary whose modeled time
        reaches it while the run shards across a multi-node cluster
        containing the node; the interrupted sweep's partial work is
        discarded as wasted time, the lost shards re-stage onto the
        survivors, and the sweep replays from its sweep-boundary
        checkpoint.  HOOI draws randomness only at initialisation, and the
        sharded kernels are bit-identical across topologies, so the
        recovered core and factors equal the failure-free run's exactly.
    ctx:
        A :class:`~repro.context.ExecContext` supplying ``cluster`` /
        ``devices`` / ``preproc_cache`` / ``chaos`` in one bundle; the
        direct kwargs above are deprecated aliases that override it and
        warn once each.
    """
    resolved = resolve_context(
        "tucker_hooi",
        ctx,
        cluster=cluster,
        devices=devices,
        preproc_cache=preproc_cache,
        chaos=chaos,
    )
    cluster, devices = resolved.cluster, resolved.devices
    preproc_cache, chaos = resolved.preproc_cache, resolved.chaos
    backend_impl = get_backend(resolved.backend)
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an all-zero tensor")
    order = tensor.order
    ranks = [check_positive_int(r, f"ranks[{i}]") for i, r in enumerate(ranks)]
    if len(ranks) != order:
        raise ValueError(f"need one rank per mode ({order}), got {len(ranks)}")
    for m, r in enumerate(ranks):
        if r > tensor.shape[m]:
            raise ValueError(
                f"ranks[{m}]={r} exceeds the mode size {tensor.shape[m]}"
            )
    max_iterations = check_positive_int(max_iterations, "max_iterations")

    rng = as_rng(seed)
    factors: List[np.ndarray] = []
    for m in range(order):
        gaussian = rng.standard_normal((tensor.shape[m], ranks[m]))
        q, _ = np.linalg.qr(gaussian)
        factors.append(q[:, : ranks[m]])

    x_norm = tensor.norm()
    ttmc_time_by_mode: Dict[int, float] = {m: 0.0 for m in range(order)}
    fits: List[float] = []
    previous_fit = -np.inf
    iterations_run = 0
    core_unfolded = np.zeros((ranks[0], int(np.prod(ranks[1:]))), dtype=np.float64)

    device, multi = resolve_cluster(device, cluster, devices)
    timeline = ShardedTimeline(multi.num_devices if multi is not None else 1)
    # The decomposition's unified timeline: per-device compute engines plus
    # the link/NIC resources the sharded all-reduces book.  HOOI is
    # strictly sequential on it — every SVD needs the fully reduced
    # unfolding — so the makespan equals the serial ledger sum; keeping
    # the bookings anyway gives Tucker the same queryable/exportable trace
    # as CP-ALS and the serving scheduler.
    unified_timeline = Timeline()
    compute_lanes = [
        unified_timeline.resource(device_compute_key(slot), category="compute")
        for slot in range(multi.num_devices if multi is not None else 1)
    ]

    preproc_time = 0.0
    pending_failures = sorted(chaos or (), key=lambda f: (f.time_s, f.node_index))
    recoveries: List[RecoveryRecord] = []
    recovery_overhead_s = 0.0
    # survivor-local slot -> original physical slot; None while intact.
    slot_map: Optional[Tuple[int, ...]] = None

    def run_ttmc(ttmc_mode: int):
        nonlocal preproc_time
        source = tensor
        if preproc_cache is not None:
            source, _hit, cost_s = preproc_cache.encoding(
                tensor, OperationKind.SPTTMC, ttmc_mode
            )
            preproc_time += cost_s
        result = unified_spttmc(
            source,
            factors,
            ttmc_mode,
            device=device,
            block_size=block_size,
            threadlen=threadlen,
            ctx=ExecContext(cluster=multi, backend=resolved.backend),
        )
        timeline.observe(result.profile, slot_map=slot_map)
        execution = getattr(result.profile, "sharded", None)
        if execution is not None:
            execution.book(
                unified_timeline,
                ready_s=unified_timeline.makespan_s,
                label=f"spttmc:mode{ttmc_mode}",
                slot_map=slot_map,
            )
        else:
            compute_lanes[0].book(
                result.estimated_time_s, label=f"spttmc:mode{ttmc_mode}"
            )
        return result

    def pop_applicable_failure() -> Optional[NodeFailure]:
        """Consume chaos events the modeled clock has passed; return the
        first one that applies to the current topology (others are
        ignored, as in :func:`~repro.algorithms.cp.cp_als`)."""
        now = unified_timeline.makespan_s
        while pending_failures and pending_failures[0].time_s <= now:
            candidate = pending_failures.pop(0)
            if (
                isinstance(multi, MultiNodeClusterSpec)
                and 0 <= candidate.node_index < multi.num_nodes
            ):
                return candidate
        return None

    def recover(failure: NodeFailure, iteration: int, mode: int) -> None:
        """Evict the failed node, book the re-staging, record the ledger.

        The caller restores the sweep-boundary checkpoint and replays.
        """
        nonlocal multi, slot_map, recovery_overhead_s
        assert isinstance(multi, MultiNodeClusterSpec)
        # Plan per-mode: each mode's SpTTMc encoding is a distinct
        # device-resident stream whose lost shards must re-stage.  The
        # plans are computed from fresh encodings (pure host math) so the
        # preprocessing cache's hit/miss ledger is not perturbed.
        plans = [
            plan_node_recovery(
                FCOOTensor.from_sparse(tensor, OperationKind.SPTTMC, m),
                multi,
                failure.node_index,
                threadlen=threadlen,
            )
            for m in range(order)
        ]
        local_to_current = multi.surviving_slots(failure.node_index)
        previous = slot_map
        slot_map = tuple(
            previous[slot] if previous is not None else slot for slot in local_to_current
        )
        multi = multi.without_node(failure.node_index)
        restage_ready = max(unified_timeline.makespan_s, failure.time_s)
        restage_end = restage_ready
        for plan in plans:
            restage_end = plan.book(
                unified_timeline,
                ready_s=restage_end,
                label=f"restage:node{failure.node_index}",
            )
        restage_s = restage_end - restage_ready
        recovery_overhead_s += restage_s
        recoveries.append(
            RecoveryRecord(
                failure=failure,
                iteration=iteration,
                mode=mode,
                restage_s=restage_s,
                restaged_bytes=sum(p.total_restaged_bytes for p in plans),
                survivor_devices=multi.num_devices,
            )
        )

    iteration = 0
    while iteration < max_iterations:
        # Sweep-boundary checkpoint: the factors are the whole mutable
        # numeric state (HOOI draws randomness only at initialisation), so
        # replaying from here on any topology reproduces the sweep exactly.
        checkpoint_factors = [f.copy() for f in factors]
        replay = False
        for mode in range(order):
            result = run_ttmc(mode)
            ttmc_time_by_mode[mode] += result.estimated_time_s
            failure = pop_applicable_failure()
            if failure is not None:
                # The interrupted TTMc's bookings stay as wasted work.
                recover(failure, iteration, mode)
                factors = [f.copy() for f in checkpoint_factors]
                replay = True
                break
            y = result.output  # (I_mode, prod_{m != mode} R_m)
            # New factor: leading left singular vectors of Y.
            u, _s, _vt = np.linalg.svd(y, full_matrices=False)
            factors[mode] = u[:, : ranks[mode]]
        if replay:
            continue  # same sweep again, from the checkpoint

        # Core (in mode-0 unfolded form) from the final mode-0 TTMc of the
        # sweep projected onto the mode-0 factor.
        final = run_ttmc(0)
        ttmc_time_by_mode[0] += final.estimated_time_s
        failure = pop_applicable_failure()
        if failure is not None:
            recover(failure, iteration, 0)
            factors = [f.copy() for f in checkpoint_factors]
            continue
        core_unfolded = backend_impl.matmul(factors[0].T, final.output)
        core_norm = float(np.linalg.norm(core_unfolded))
        # For orthonormal factors ||X - X̂||² = ||X||² - ||G||².
        residual_sq = max(x_norm**2 - core_norm**2, 0.0)
        fit = 1.0 - float(np.sqrt(residual_sq)) / x_norm
        fits.append(fit)
        iterations_run += 1
        iteration += 1
        if abs(fit - previous_fit) < tolerance:
            break
        previous_fit = fit

    core = _fold_core(core_unfolded, ranks)
    result = TuckerResult(
        core=core,
        factors=factors,
        fits=fits,
        iterations=iterations_run,
        ttmc_time_by_mode=ttmc_time_by_mode,
        device_time_by_device=(
            dict(timeline.device_busy_s) if multi is not None else None
        ),
        parallel_efficiency=timeline.parallel_efficiency if multi is not None else None,
        preproc_time_s=preproc_time,
        makespan_s=unified_timeline.makespan_s,
        timeline=unified_timeline,
        recoveries=recoveries,
        recovery_overhead_s=recovery_overhead_s,
    )
    if resolved.metrics is not None:
        observe_decomposition(
            resolved.metrics,
            algorithm="tucker_hooi",
            iterations=iterations_run,
            makespan_s=result.makespan_s or 0.0,
            recoveries=len(recoveries),
            recovery_overhead_s=recovery_overhead_s,
        )
    return result


def _fold_core(core_unfolded: np.ndarray, ranks: Sequence[int]) -> np.ndarray:
    """Fold the mode-0 unfolded core back into a dense tensor of shape ``ranks``."""
    from repro.tensor.dense import fold_dense

    return fold_dense(core_unfolded, 0, tuple(ranks))
