"""CP-ALS (CANDECOMP/PARAFAC via alternating least squares) — Algorithm 1.

The decomposition iterates over the tensor modes; for each mode it computes
an MTTKRP, solves the small ``R × R`` normal equations, and normalises the
updated factor.  The MTTKRP dominates the run time (Figure 10), so the
algorithm is parameterised by an *engine* that supplies it:

* :class:`UnifiedGPUEngine` — the paper's contribution: F-COO is
  pre-encoded on the host once per mode, transferred to the GPU once, and
  every MTTKRP runs the unified one-shot kernel.  The per-mode times are
  nearly identical because the kernel is insensitive to the mode
  (Section IV-D, "Complete tensor-based algorithms").
* :class:`SplattCPUEngine` — SPLATT's CSF-based CPU MTTKRP sharing one
  fiber tree across modes, which makes the per-mode times uneven (Figure
  10's SPLATT bars).

Both engines return simulated kernel times; the dense linear algebra
(Gram matrices, the pseudo-inverse solve, column normalisation) is charged
to a simple dense-kernel model and reported as the "other" category, again
matching Figure 10's breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.algorithms.fit import cp_fit
from repro.algorithms.normalization import normalize_columns
from repro.backends import get_backend
from repro.context import UNSET, ExecContext, resolve_context
from repro.cpusim.cpu import CPU_I7_5820K, CpuSpec
from repro.formats.fcoo import FCOOTensor
from repro.formats.csf import CSFTensor
from repro.formats.mode_encoding import OperationKind
from repro.gpusim.cluster import ClusterLike, MultiNodeClusterSpec, NodeFailure, resolve_cluster
from repro.gpusim.device import DeviceSpec, TITAN_X
from repro.gpusim.timeline import Timeline, device_compute_key, device_copy_key
from repro.kernels.baselines.splatt import splatt_csf_mode_order, splatt_mttkrp
from repro.kernels.common import MTTKRPResult
from repro.kernels.unified.sharded import (
    RecoveryPlan,
    ShardedTimeline,
    partition_for_cluster,
    plan_node_recovery,
)
from repro.kernels.unified.spmttkrp import spmttkrp_footprint, unified_spmttkrp
from repro.kernels.unified.streaming import should_stream
from repro.obs.metrics import observe_decomposition
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor
from repro.util.rng import SeedLike
from repro.util.validation import check_positive_int, check_rank

__all__ = [
    "CPResult",
    "RecoveryRecord",
    "cp_als",
    "CPEngine",
    "UnifiedGPUEngine",
    "SplattCPUEngine",
]


class CPEngine(Protocol):
    """Interface a CP-ALS MTTKRP/dense-update provider must implement."""

    name: str

    def prepare(self, tensor: SparseTensor, rank: int) -> float:
        """Preprocess/transfer the tensor; returns the setup time in seconds."""
        ...

    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> MTTKRPResult:
        """Run the MTTKRP for ``mode`` using the prepared tensor."""
        ...

    def dense_update_time(self, mode_size: int, rank: int, order: int) -> float:
        """Estimated time of the per-mode dense updates (Gram/solve/normalise)."""
        ...


@dataclass
class UnifiedGPUEngine:
    """CP-ALS engine backed by the unified F-COO GPU kernels.

    Attributes
    ----------
    device:
        Simulated GPU.
    block_size / threadlen:
        Default launch parameters; ``per_mode_params`` overrides them per
        mode (the auto-tuner of Figure 5 / Table V produces these).
    per_mode_params:
        Optional ``{mode: (block_size, threadlen)}`` mapping.
    streamed / num_streams / chunk_nnz:
        Out-of-core controls forwarded to every MTTKRP.  The default
        (``streamed=None``) auto-falls back to the chunked streaming path
        when a mode's F-COO encoding does not fit in device memory, so
        CP-ALS completes on over-capacity tensors instead of raising
        :class:`~repro.gpusim.timing.OutOfDeviceMemory`.
    cluster / devices:
        Multi-GPU controls forwarded to every MTTKRP: a
        :class:`~repro.gpusim.cluster.ClusterSpec` /
        :class:`~repro.gpusim.cluster.MultiNodeClusterSpec` (or a bare device count
        building a homogeneous cluster of ``device``) shards every MTTKRP
        across the cluster and all-reduces the partial factor updates.
        The engine accumulates the per-device busy seconds of the whole
        decomposition in :attr:`device_timelines` and its scaling
        efficiency in :attr:`parallel_efficiency`.
    preproc_cache:
        Optional :class:`~repro.serve.cache.PreprocCache` (any object with
        its ``encoding(tensor, operation, mode)`` protocol).  When given,
        :meth:`prepare` obtains the per-mode F-COO encodings through the
        cache instead of rebuilding them, so repeated decompositions of the
        same tensor — the multi-tenant serving pattern — skip the host
        preprocessing; the host seconds of cache *misses* are then charged
        into the setup time (they are exactly what a later hit saves).
    ctx:
        A :class:`~repro.context.ExecContext` supplying the execution
        fields above in one bundle.  Explicit legacy kwargs override the
        matching ``ctx`` fields but are deprecated and warn once each.
        ``ctx.overlap_staging`` additionally defers resident shard staging
        out of :meth:`prepare` into per-mode per-device ledgers that
        :func:`cp_als` books on the copy engines (overlapped with the
        previous mode's reduction).
    """

    device: DeviceSpec = TITAN_X
    block_size: int = 128
    threadlen: int = 8
    per_mode_params: Optional[Dict[int, Tuple[int, int]]] = None
    streamed: Optional[bool] = None
    num_streams: int = 2
    chunk_nnz: Optional[int] = None
    cluster: Optional[ClusterLike] = None
    devices: Optional[int] = None
    preproc_cache: Optional[object] = None
    name: str = "unified-gpu"
    ctx: Optional[ExecContext] = None

    def __post_init__(self) -> None:
        resolved = resolve_context(
            "UnifiedGPUEngine",
            self.ctx,
            streamed=self.streamed if self.streamed is not None else UNSET,
            num_streams=self.num_streams if self.num_streams != 2 else UNSET,
            chunk_nnz=self.chunk_nnz if self.chunk_nnz is not None else UNSET,
            cluster=self.cluster if self.cluster is not None else UNSET,
            devices=self.devices if self.devices is not None else UNSET,
            preproc_cache=self.preproc_cache if self.preproc_cache is not None else UNSET,
        )
        self.ctx = resolved
        self.streamed = resolved.streamed
        self.num_streams = resolved.num_streams
        self.chunk_nnz = resolved.chunk_nnz
        self.cluster = resolved.cluster
        self.devices = resolved.devices
        self.preproc_cache = resolved.preproc_cache
        self._overlap_staging = resolved.overlap_staging
        self._encodings: Dict[int, FCOOTensor] = {}
        self._tensor: Optional[SparseTensor] = None
        self.device, self._cluster = resolve_cluster(self.device, self.cluster, self.devices)
        self._timeline = ShardedTimeline(
            self._cluster.num_devices if self._cluster is not None else 1
        )
        # mode -> {device slot: staging seconds} when ctx.overlap_staging
        # moved resident shard staging out of prepare()'s serial charge.
        self._deferred_staging: Dict[int, Dict[int, float]] = {}
        # survivor-local slot -> original physical slot, set by evict_node();
        # None while no node has been lost.
        self._slot_map: Optional[Tuple[int, ...]] = None

    def prepare(self, tensor: SparseTensor, rank: int) -> float:
        """Encode F-COO for every mode on the host and transfer once to the GPU.

        The paper performs exactly this preprocessing so that no format
        conversion or host transfer happens inside a CP iteration.  An
        encoding that will execute out-of-core cannot stay resident, so its
        bytes are *not* charged here — the streamed kernel re-ships them
        chunk-by-chunk inside every MTTKRP and charges the PCIe time there.
        """
        self._tensor = tensor
        # A fresh decomposition starts a fresh timeline: an engine reused
        # across cp_als() calls must not leak the previous run's MTTKRPs
        # into the next CPResult's per-device report.
        self._timeline = ShardedTimeline(self._timeline.num_devices)
        encode_s = 0.0
        if self.preproc_cache is not None:
            self._encodings = {}
            for mode in range(tensor.order):
                encoding, _hit, cost_s = self.preproc_cache.encoding(
                    tensor, OperationKind.SPMTTKRP, mode
                )
                self._encodings[mode] = encoding
                encode_s += cost_s
        else:
            self._encodings = {
                mode: FCOOTensor.from_sparse(tensor, OperationKind.SPMTTKRP, mode)
                for mode in range(tensor.order)
            }
        transfer_bytes = sum(tensor.shape[m] * rank * 4.0 for m in range(tensor.order))
        # In cluster mode every device stages its own shard over its own
        # PCIe link simultaneously, so an encoding's staging cost is the
        # largest shard (~1/N of the stream); the factor matrices go to
        # every device in parallel and are charged once.
        shard_divisor = self._cluster.num_devices if self._cluster is not None else 1
        self._deferred_staging = {}
        bandwidth = self.device.pcie_bandwidth_bytes_per_s
        for mode, enc in self._encodings.items():
            if self._will_stream(enc, rank):
                continue
            if self._overlap_staging:
                # Defer resident shard staging onto the per-device copy
                # engines: cp_als books each device's shard transfer during
                # the first sweep, overlapped with the previous mode's
                # reduction, instead of this serial up-front charge.
                if self._cluster is not None:
                    threadlen = self._params_for(mode)[1]
                    shards = partition_for_cluster(enc, self._cluster, threadlen=threadlen)
                    self._deferred_staging[mode] = {
                        slot: float(shard.tensor.storage_bytes(threadlen)) / bandwidth
                        for slot, shard in enumerate(shards)
                        if shard.nnz
                    }
                else:
                    self._deferred_staging[mode] = {
                        0: enc.storage_bytes(self._params_for(mode)[1]) / bandwidth
                    }
            else:
                transfer_bytes += enc.storage_bytes(self._params_for(mode)[1]) / shard_divisor
        return transfer_bytes / bandwidth + encode_s

    @property
    def deferred_staging(self) -> Dict[int, Dict[int, float]]:
        """Per-mode per-device shard staging deferred out of :meth:`prepare`.

        Empty unless the engine was built with
        ``ctx=ExecContext(overlap_staging=True)``; :func:`cp_als` consumes
        one mode entry per first-sweep mode and books it on the copy
        engines.
        """
        return self._deferred_staging

    def _will_stream(self, encoding: FCOOTensor, rank: int) -> bool:
        """The kernel's streamed/one-shot decision, evaluated for one mode.

        Uses :func:`spmttkrp_footprint` — the kernel's own accounting — so
        ``prepare()``'s transfer charging cannot drift from the branch the
        MTTKRP actually takes.
        """
        block_size, threadlen = self._params_for(encoding.mode)
        footprint, resident = spmttkrp_footprint(
            encoding, rank, block_size=block_size, threadlen=threadlen
        )
        if self._cluster is not None:
            # Each device holds only its shard (~1/N of the stream) next to
            # the full dense operands.
            footprint = resident + (footprint - resident) / self._cluster.num_devices
        return should_stream(encoding, footprint, self.device, self.streamed)

    def _params_for(self, mode: int) -> Tuple[int, int]:
        if self.per_mode_params and mode in self.per_mode_params:
            return self.per_mode_params[mode]
        return self.block_size, self.threadlen

    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> MTTKRPResult:
        if not self._encodings:
            raise RuntimeError("prepare() must be called before mttkrp()")
        block_size, threadlen = self._params_for(mode)
        result = unified_spmttkrp(
            self._encodings[mode],
            factors,
            mode,
            device=self.device,
            block_size=block_size,
            threadlen=threadlen,
            ctx=ExecContext(
                streamed=self.streamed,
                num_streams=self.num_streams,
                chunk_nnz=self.chunk_nnz,
                cluster=self._cluster,
                backend=self.ctx.backend if self.ctx is not None else None,
            ),
        )
        self._timeline.observe(result.profile, slot_map=self._slot_map)
        return result

    def evict_node(self, node_index: int) -> List[RecoveryPlan]:
        """Drop a failed node and re-partition every mode onto the survivors.

        Called by the decomposition drivers when a
        :class:`~repro.gpusim.cluster.NodeFailure` fires mid-run.  For each
        prepared mode encoding a :class:`~repro.kernels.unified.sharded.RecoveryPlan`
        is computed against the pre-failure topology (what must be re-staged
        onto each survivor), then the engine switches to the survivor
        cluster so every subsequent :meth:`mttkrp` shards across it.  The
        returned plans carry the modeled re-staging cost; booking them on a
        timeline is the caller's job (the engine itself never books).

        ``node_index`` is interpreted against the engine's *current*
        topology — after a previous eviction, indices refer to the
        survivor cluster.
        """
        cluster = self._cluster
        if not isinstance(cluster, MultiNodeClusterSpec):
            raise RuntimeError(
                "evict_node() requires a multi-node cluster engine; "
                f"current cluster is {type(cluster).__name__}"
            )
        plans = [
            plan_node_recovery(
                self._encodings[mode],
                cluster,
                node_index,
                threadlen=self._params_for(mode)[1],
            )
            for mode in sorted(self._encodings)
        ]
        local_to_current = cluster.surviving_slots(node_index)
        previous = self._slot_map
        # Compose with any earlier eviction so the map always lands on the
        # original physical slots the decomposition's lanes are keyed by.
        self._slot_map = tuple(
            previous[slot] if previous is not None else slot for slot in local_to_current
        )
        self._cluster = cluster.without_node(node_index)
        return plans

    # ------------------------------------------------------------------ #
    @property
    def slot_map(self) -> Optional[Tuple[int, ...]]:
        """Survivor-local slot -> original physical slot after a node loss.

        ``None`` while the full topology is intact.  The decomposition
        drivers use this to keep timeline bookings and per-device ledgers
        keyed by physical slot across an eviction.
        """
        return self._slot_map

    @property
    def resolved_cluster(self) -> Optional[ClusterLike]:
        """The cluster MTTKRPs shard across (``None`` in single-GPU mode).

        This is the normalised form of the ``cluster=`` / ``devices=``
        inputs (see :func:`~repro.gpusim.cluster.resolve_cluster`) —
        what :func:`cp_als` books collective time against on the unified
        timeline.
        """
        return self._cluster

    @property
    def device_timelines(self) -> Optional[Dict[int, float]]:
        """Per-device busy seconds across all MTTKRPs run so far.

        ``None`` in single-GPU mode; in cluster mode a ``{device slot:
        seconds}`` mapping (idle trailing devices are absent).
        """
        if self._cluster is None:
            return None
        return dict(self._timeline.device_busy_s)

    @property
    def reduction_time_s(self) -> float:
        """Total modeled partial-output reduction seconds across MTTKRPs."""
        return self._timeline.reduction_time_s

    @property
    def parallel_efficiency(self) -> Optional[float]:
        """Cluster busy fraction over all sharded MTTKRPs, in ``(0, 1]``.

        ``sum(per-device busy) / (N * sum(sharded makespans))``; ``None``
        in single-GPU mode or before any MTTKRP ran.
        """
        if self._cluster is None:
            return None
        return self._timeline.parallel_efficiency

    def dense_update_time(self, mode_size: int, rank: int, order: int) -> float:
        """CUBLAS-style dense update: Gram, Hadamard, pseudo-inverse, GEMM.

        The matrix-matrix work is ``O(I·R²)`` and the solve ``O(R³)``; both
        run close to the device's dense throughput.  Launch overheads are not
        charged: the paper runs the dense linear algebra in a second CUDA
        stream that overlaps with the MTTKRP stream, so only the data-path
        time remains on the critical path.
        """
        flops = 4.0 * mode_size * rank**2 + 10.0 * rank**3
        bytes_moved = (3.0 * mode_size * rank + 4.0 * rank**2) * 4.0
        compute = flops / (self.device.peak_flops * 0.5)
        memory = bytes_moved / self.device.achievable_bandwidth_bytes_per_s
        return max(compute, memory)


@dataclass
class SplattCPUEngine:
    """CP-ALS engine backed by SPLATT's CSF CPU MTTKRP.

    One CSF tree (rooted at ``root_mode``, by default the shortest mode as
    SPLATT does) is shared across the per-mode MTTKRPs of each iteration.
    """

    cpu: CpuSpec = CPU_I7_5820K
    num_threads: Optional[int] = None
    root_mode: Optional[int] = None
    name: str = "splatt-cpu"

    def __post_init__(self) -> None:
        self._csf: Optional[CSFTensor] = None
        self._tensor: Optional[SparseTensor] = None

    def prepare(self, tensor: SparseTensor, rank: int) -> float:
        self._tensor = tensor
        root = self.root_mode
        if root is None:
            root = int(np.argmin(tensor.shape))
        self._csf = CSFTensor.from_sparse(tensor, splatt_csf_mode_order(tensor, root))
        # CSF construction is a sort + compress over the non-zeros; charge a
        # small host-side cost proportional to nnz (excluded from the CP
        # iteration time, as in the paper's measurements).
        return tensor.nnz * 40e-9

    def mttkrp(self, factors: Sequence[np.ndarray], mode: int) -> MTTKRPResult:
        if self._csf is None or self._tensor is None:
            raise RuntimeError("prepare() must be called before mttkrp()")
        return splatt_mttkrp(
            self._tensor,
            factors,
            mode,
            cpu=self.cpu,
            num_threads=self.num_threads,
            csf=self._csf,
        )

    def dense_update_time(self, mode_size: int, rank: int, order: int) -> float:
        """Dense update on the CPU (BLAS-backed, near peak FLOPs)."""
        flops = 4.0 * mode_size * rank**2 + 10.0 * rank**3
        bytes_moved = (3.0 * mode_size * rank + 4.0 * rank**2) * 4.0
        compute = flops / (self.cpu.peak_flops * 0.5)
        memory = bytes_moved / self.cpu.achievable_bandwidth_bytes_per_s
        return max(compute, memory)


@dataclass(frozen=True)
class RecoveryRecord:
    """Ledger entry for one mid-run node loss survived by checkpoint/replay.

    Attributes
    ----------
    failure:
        The :class:`~repro.gpusim.cluster.NodeFailure` that fired.
    iteration:
        0-based ALS sweep that was interrupted (and then replayed in full
        from its iteration-boundary checkpoint).
    mode:
        Mode boundary at which the loss was detected; the partial sweep up
        to and including this mode is discarded as wasted work.
    restage_s:
        Modeled seconds spent re-staging the failed node's shards onto the
        survivors (booked on the decomposition timeline's copy lanes).
    restaged_bytes:
        Total bytes re-staged across all modes and survivors.
    survivor_devices:
        Device count of the topology the run continued on.
    """

    failure: NodeFailure
    iteration: int
    mode: int
    restage_s: float
    restaged_bytes: float
    survivor_devices: int


@dataclass
class CPResult:
    """Result of a CP-ALS run.

    Attributes
    ----------
    factors:
        One normalised ``(I_m, R)`` factor per mode.
    weights:
        The λ column weights.
    fits:
        Fit value after each iteration (empty when fit tracking is off).
    iterations:
        Number of ALS iterations executed.
    mttkrp_time_by_mode:
        Total simulated MTTKRP seconds per mode (Figure 10's coloured bars).
    other_time_s:
        Total simulated dense-update seconds (Figure 10's "other").
    setup_time_s:
        Engine preprocessing/transfer time (not part of the iteration time).
    engine_name:
        Which engine produced the timings.
    device_time_by_device:
        Per-device busy seconds of the whole decomposition when the engine
        ran in multi-GPU mode (``None`` otherwise) — the per-device
        timeline of the sharded MTTKRPs.
    parallel_efficiency:
        Cluster busy fraction over the sharded MTTKRP makespans, in
        ``(0, 1]`` (``None`` for single-GPU engines).
    makespan_s:
        Modeled completion time of the decomposition's iteration work on
        the unified timeline (setup excluded, like :attr:`total_time_s`).
        Equals :attr:`total_time_s` up to float association when
        ``overlap_modes`` is off; with it on, never above — the mode-
        ``k`` all-reduce rides the link/NIC resources while the dense
        update books compute.
    overlap_modes:
        Whether the run overlapped each mode's collective with its dense
        update (see :func:`cp_als`).
    timeline:
        The :class:`~repro.gpusim.timeline.Timeline` the decomposition's
        per-mode MTTKRP computes, collectives and dense updates were
        booked on (queryable; Chrome-trace exportable).
    recoveries:
        One :class:`RecoveryRecord` per node loss survived mid-run (empty
        for failure-free runs).
    recovery_overhead_s:
        Total modeled re-staging seconds across all recoveries.  The
        replayed sweeps' compute cost is *not* in here — it lands in the
        ordinary per-mode ledgers and :attr:`makespan_s` like any other
        executed work.
    preemptions:
        Scheduler-level preemptions this run suffered.  A standalone
        decomposition is never preempted (the list stays empty); the
        field exists so :class:`CPResult` satisfies the
        :class:`~repro.context.TimedResult` protocol alongside
        ``ScheduleOutcome``, whose preemptions are real.
    """

    factors: List[np.ndarray]
    weights: np.ndarray
    fits: List[float]
    iterations: int
    mttkrp_time_by_mode: Dict[int, float]
    other_time_s: float
    setup_time_s: float
    engine_name: str
    device_time_by_device: Optional[Dict[int, float]] = None
    parallel_efficiency: Optional[float] = None
    makespan_s: Optional[float] = None
    overlap_modes: bool = False
    timeline: Optional[Timeline] = None
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    recovery_overhead_s: float = 0.0
    preemptions: List[object] = field(default_factory=list)

    @property
    def total_time_s(self) -> float:
        """Total serial simulated decomposition time (MTTKRPs + dense
        updates, no cross-phase overlap) — the pre-timeline ledger sum."""
        return sum(self.mttkrp_time_by_mode.values()) + self.other_time_s

    @property
    def overlap_saved_s(self) -> float:
        """Modeled seconds ``overlap_modes`` saved over serial execution
        (0 when the timeline was not tracked or nothing overlapped)."""
        if self.makespan_s is None:
            return 0.0
        return max(0.0, self.total_time_s - self.makespan_s)

    @property
    def final_fit(self) -> Optional[float]:
        """Fit after the last iteration (``None`` when not tracked)."""
        return self.fits[-1] if self.fits else None


def cp_als(
    tensor: SparseTensor,
    rank: int,
    *,
    engine: Optional[CPEngine] = None,
    max_iterations: int = 10,
    tolerance: float = 1e-5,
    seed: SeedLike = 0,
    compute_fit: bool = True,
    initial_factors: Optional[Sequence[np.ndarray]] = None,
    overlap_modes: Any = UNSET,
    chaos: Any = UNSET,
    ctx: Optional[ExecContext] = None,
) -> CPResult:
    """Run CP-ALS (Algorithm 1) on a sparse tensor.

    Parameters
    ----------
    tensor:
        The sparse input tensor.
    rank:
        Decomposition rank ``R`` (number of factor columns).
    engine:
        MTTKRP provider; defaults to :class:`UnifiedGPUEngine`.
    max_iterations:
        Maximum number of ALS sweeps.
    tolerance:
        Stop when the fit improves by less than this between iterations
        (only active when ``compute_fit`` is on).
    seed:
        Seed for the random initial factors.
    compute_fit:
        Track the decomposition fit each iteration (costs one sparse model
        evaluation per iteration; disable for pure benchmarking).
    initial_factors:
        Optional explicit initial factors (overrides ``seed``).
    overlap_modes:
        Intra-kernel pipelining on the unified timeline: mode ``k``'s
        partial-output all-reduce books the cluster's link/NIC resources
        while mode ``k``'s dense update (the normal-equations solve on the
        reduce-scattered rows each device owns) books the compute engines;
        mode ``k + 1``'s MTTKRP waits for both — the updated factor must be
        fully distributed — so the numeric iteration order, and hence every
        factor, is bit-identical to the sequential schedule.  Only
        ``CPResult.makespan_s`` moves, and only downward: each mode pays
        ``max(collective, dense)`` instead of their sum.  A single-GPU
        engine has no collective, so the flag is a modeled no-op there.
    chaos:
        Optional :class:`~repro.gpusim.cluster.NodeFailure` events to
        survive.  A failure *fires* at the first mode boundary whose
        modeled completion time reaches ``failure.time_s`` while the
        engine shards across a multi-node cluster containing
        ``failure.node_index`` (indices read against the topology at that
        moment).  The interrupted sweep's partial work is discarded as
        wasted time (its bookings stay on the timeline), the failed
        node's shards are re-staged onto the survivors (modeled on the
        copy lanes), and the sweep replays in full from its
        iteration-boundary checkpoint on the survivor topology.  Because
        the sharded kernels are bit-identical across topologies and
        CP-ALS draws randomness only at initialisation, the returned
        factors are bit-identical to the failure-free run's.  Failures
        that cannot apply (single-GPU engine, out-of-range node) are
        ignored; ``recover_s`` is ignored here — a decomposition never
        rebalances back onto a returned node mid-run (the serving layer
        does reuse recovered nodes for *new* jobs).

    ctx:
        A :class:`~repro.context.ExecContext`: supplies ``overlap_modes``
        and ``chaos`` (the direct kwargs are deprecated aliases that
        override it and warn once), plus ``overlap_staging`` — book each
        mode's resident shard staging on the per-device copy engines
        during the first sweep, overlapped with the previous mode's
        reduction, instead of charging it serially in engine setup (the
        factors are bit-identical; only modeled time moves, and only
        downward).  When no ``engine`` is given, the default
        :class:`UnifiedGPUEngine` is built from this context, so
        ``cp_als(x, r, ctx=ExecContext(devices=4))`` is the multi-GPU
        spelling.

    Returns
    -------
    CPResult
    """
    resolved = resolve_context("cp_als", ctx, overlap_modes=overlap_modes, chaos=chaos)
    overlap_modes = resolved.overlap_modes
    chaos = resolved.chaos
    backend_impl = get_backend(resolved.backend)
    rank = check_rank(rank)
    max_iterations = check_positive_int(max_iterations, "max_iterations")
    if tensor.nnz == 0:
        raise ValueError("cannot decompose an all-zero tensor")
    order = tensor.order
    if engine is None:
        engine = UnifiedGPUEngine(ctx=resolved)

    if initial_factors is not None:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in initial_factors]
        if len(factors) != order:
            raise ValueError(f"need one initial factor per mode ({order}), got {len(factors)}")
        for m, f in enumerate(factors):
            if f.shape != (tensor.shape[m], rank):
                raise ValueError(
                    f"initial factor {m} must have shape {(tensor.shape[m], rank)}, got {f.shape}"
                )
    else:
        factors = [np.array(f) for f in random_factors(tensor.shape, rank, seed=seed)]

    setup_time = engine.prepare(tensor, rank)
    mttkrp_time_by_mode: Dict[int, float] = {m: 0.0 for m in range(order)}
    other_time = 0.0
    weights = np.ones(rank, dtype=np.float64)
    fits: List[float] = []
    previous_fit = -np.inf
    iterations_run = 0

    # The decomposition's own timeline: per-device compute engines plus —
    # through the cluster's booking API — the link/NIC resources its
    # collectives occupy.  Booking is pure modeled time; the numeric
    # iteration below never consults it, which is what keeps the factors
    # bit-identical whether or not the modes overlap.
    cluster = getattr(engine, "resolved_cluster", None)
    num_slots = cluster.num_devices if cluster is not None else 1
    timeline = Timeline()
    compute_lanes = [
        timeline.resource(device_compute_key(slot), category="compute")
        for slot in range(num_slots)
    ]
    # Shard staging the engine deferred out of prepare() (ctx.overlap_staging):
    # each mode's per-device transfers book the copy engines during the first
    # sweep, so mode k+1's staging rides the copy lanes while mode k computes
    # and reduces.  Only the first mode's staging stays on the critical path.
    deferred_staging = dict(getattr(engine, "deferred_staging", None) or {})
    copy_lanes = (
        [
            timeline.resource(device_copy_key(slot), category="copy")
            for slot in range(num_slots)
        ]
        if deferred_staging
        else []
    )
    kernel_ready = 0.0  # when the next mode's MTTKRP may start

    # Fault tolerance: pending chaos events, the lanes still alive (a
    # survivor-local kernel slot i maps to physical lane active_lanes[i]),
    # and the recovery ledger.
    pending_failures = sorted(chaos or (), key=lambda f: (f.time_s, f.node_index))
    active_lanes = list(compute_lanes)
    recoveries: List[RecoveryRecord] = []
    recovery_overhead_s = 0.0

    grams = [backend_impl.gram(f) for f in factors]
    iteration = 0
    while iteration < max_iterations:
        # Iteration-boundary checkpoint: everything the sweep mutates.
        # Together with the (seed, iteration) pair — CP-ALS draws
        # randomness only at initialisation — this is the complete state
        # needed to replay the sweep bit-for-bit on any topology.
        checkpoint_factors = [f.copy() for f in factors]
        checkpoint_grams = [g.copy() for g in grams]
        checkpoint_weights = weights.copy()
        replay = False
        for mode in range(order):
            stage_end = 0.0
            staging = deferred_staging.pop(mode, None)
            if staging:
                for slot, stage_s in sorted(staging.items()):
                    if slot < len(copy_lanes):
                        landed = copy_lanes[slot].book(stage_s, label=f"stage:mode{mode}")
                        stage_end = max(stage_end, landed.end_s)

            result = engine.mttkrp(factors, mode)
            mttkrp_time_by_mode[mode] += result.estimated_time_s
            m_matrix = result.output

            # Book this mode on the timeline: per-device shard compute,
            # then the partial-output collective on the link/NIC tier.
            execution = getattr(getattr(result, "profile", None), "sharded", None)
            if execution is not None:
                compute_span = execution.max_shard_time_s
                reduce_s = execution.reduction_time_s
                busy_by_slot = execution.device_times
            else:
                compute_span = result.estimated_time_s
                reduce_s = 0.0
                busy_by_slot = {0: compute_span}
            kernel_start = max(kernel_ready, stage_end)
            for lane in active_lanes:
                kernel_start = max(kernel_start, lane.free_s)
            for slot, busy in busy_by_slot.items():
                if busy > 0.0 and slot < len(active_lanes):
                    active_lanes[slot].book(busy, ready_s=kernel_start, label=f"mttkrp:mode{mode}")
            kernel_end = kernel_start + compute_span
            reduce_end = kernel_end
            if reduce_s > 0.0 and cluster is not None:
                reduce_end = cluster.book_collective(
                    timeline,
                    reduce_s,
                    ready_s=kernel_end,
                    label=f"allreduce:mode{mode}",
                ).end_s

            # Chaos: did a node die while this mode's work was in flight?
            # Failures that cannot apply to the current engine/topology are
            # consumed and ignored.
            failure = None
            while pending_failures and pending_failures[0].time_s <= reduce_end:
                candidate = pending_failures.pop(0)
                if (
                    isinstance(cluster, MultiNodeClusterSpec)
                    and hasattr(engine, "evict_node")
                    and 0 <= candidate.node_index < cluster.num_nodes
                ):
                    failure = candidate
                    break
            if failure is not None:
                # This mode's kernel and collective never delivered: their
                # bookings stay on the timeline as wasted work.  Discard
                # the partial sweep, shrink to the survivors, re-stage the
                # lost shards, and replay the sweep from the checkpoint.
                plans = engine.evict_node(failure.node_index)
                cluster = engine.resolved_cluster
                slot_map = engine.slot_map
                active_lanes = [compute_lanes[slot] for slot in slot_map]
                factors = [f.copy() for f in checkpoint_factors]
                grams = [g.copy() for g in checkpoint_grams]
                weights = checkpoint_weights.copy()
                restage_ready = max(reduce_end, failure.time_s)
                restage_end = restage_ready
                for plan in plans:
                    restage_end = plan.book(
                        timeline,
                        ready_s=restage_end,
                        label=f"restage:node{failure.node_index}",
                    )
                restage_s = restage_end - restage_ready
                recovery_overhead_s += restage_s
                recoveries.append(
                    RecoveryRecord(
                        failure=failure,
                        iteration=iteration,
                        mode=mode,
                        restage_s=restage_s,
                        restaged_bytes=sum(p.total_restaged_bytes for p in plans),
                        survivor_devices=cluster.num_devices,
                    )
                )
                kernel_ready = restage_end
                replay = True
                break

            v = backend_impl.dense_hadamard(
                [grams[m] for m in range(order) if m != mode], rank
            )
            updated = backend_impl.matmul(m_matrix, np.linalg.pinv(v))
            normalized, weights = normalize_columns(updated)
            factors[mode] = normalized
            grams[mode] = backend_impl.gram(normalized)
            dense_s = engine.dense_update_time(tensor.shape[mode], rank, order)
            other_time += dense_s
            # Sequential: the dense update waits for the all-reduce.  With
            # overlap_modes the solve proceeds on each device's reduce-
            # scattered rows while the collective's tail rides the links,
            # so the dense update is gated on the kernel only; the next
            # mode still waits for the fully distributed factor
            # (kernel_ready = reduce_end below).
            timeline.book_together(
                active_lanes,
                dense_s,
                ready_s=kernel_end if overlap_modes else reduce_end,
                label=f"dense:mode{mode}",
            )
            kernel_ready = reduce_end

        if replay:
            continue  # same iteration again, from the checkpoint
        iterations_run += 1
        iteration += 1

        if compute_fit:
            fit = cp_fit(tensor, factors, weights)
            fits.append(fit)
            if abs(fit - previous_fit) < tolerance:
                break
            previous_fit = fit

    result = CPResult(
        factors=factors,
        weights=weights,
        fits=fits,
        iterations=iterations_run,
        mttkrp_time_by_mode=mttkrp_time_by_mode,
        other_time_s=other_time,
        setup_time_s=setup_time,
        engine_name=engine.name,
        device_time_by_device=getattr(engine, "device_timelines", None),
        parallel_efficiency=getattr(engine, "parallel_efficiency", None),
        makespan_s=timeline.makespan_s,
        overlap_modes=overlap_modes,
        timeline=timeline,
        recoveries=recoveries,
        recovery_overhead_s=recovery_overhead_s,
    )
    if resolved.metrics is not None:
        observe_decomposition(
            resolved.metrics,
            algorithm="cp_als",
            iterations=iterations_run,
            makespan_s=result.makespan_s or 0.0,
            recoveries=len(recoveries),
            recovery_overhead_s=recovery_overhead_s,
        )
    return result
