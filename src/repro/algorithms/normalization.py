"""Factor-matrix column normalisation used by CP-ALS (Algorithm 1, lines 3/5/7)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["normalize_columns"]


def normalize_columns(matrix: np.ndarray, *, ord: int = 2) -> Tuple[np.ndarray, np.ndarray]:
    """Normalise the columns of a factor matrix.

    Returns the normalised matrix and the column norms (the weights λ that
    CP-ALS accumulates).  Columns with zero norm are left untouched and get
    a weight of 1 so downstream reconstruction stays well defined.

    Parameters
    ----------
    matrix:
        ``(I, R)`` factor matrix.
    ord:
        Vector norm order (2 by default; CP-ALS commonly uses the max norm
        during early iterations, which ``ord=np.inf`` would give).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    norms = np.linalg.norm(matrix, ord=ord, axis=0)
    safe = norms.copy()
    safe[safe == 0] = 1.0
    normalized = matrix / safe
    weights = np.where(norms == 0, 1.0, norms)
    return normalized, weights
