"""Decomposition-quality metrics computed without densifying the tensor.

CP-ALS monitors the *fit*

``fit = 1 - ||X - X̂|| / ||X||``

where ``X̂`` is the rank-R CP model.  For a sparse ``X`` the residual norm is
expanded as ``||X||² - 2·<X, X̂> + ||X̂||²`` so that only the model needs to be
evaluated at the non-zero coordinates:

* ``<X, X̂>`` sums, over the non-zeros, the value times the model value at
  that coordinate (a Khatri-Rao style product over the factor rows);
* ``||X̂||²`` has the closed form ``λᵀ (Π_m A_mᵀA_m) λ`` using only the
  ``R × R`` Gram matrices.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor.sparse import SparseTensor

__all__ = ["cp_inner_product", "cp_norm", "cp_fit"]


def _check_factors(tensor: SparseTensor, factors: Sequence[np.ndarray]) -> list:
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    if len(mats) != tensor.order:
        raise ValueError(f"need one factor per mode ({tensor.order}), got {len(mats)}")
    ranks = {m.shape[1] for m in mats}
    if len(ranks) != 1:
        raise ValueError(f"all factors must share one rank, got {sorted(ranks)}")
    for m, mat in enumerate(mats):
        if mat.shape[0] != tensor.shape[m]:
            raise ValueError(
                f"factor {m} has {mat.shape[0]} rows but tensor mode {m} has size "
                f"{tensor.shape[m]}"
            )
    return mats


def cp_inner_product(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    weights: Optional[np.ndarray] = None,
) -> float:
    """Inner product ``<X, X̂>`` between a sparse tensor and a CP model."""
    mats = _check_factors(tensor, factors)
    rank = mats[0].shape[1]
    if weights is None:
        weights = np.ones(rank, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if tensor.nnz == 0:
        return 0.0
    idx = np.asarray(tensor.indices)
    model_rows = np.ones((tensor.nnz, rank), dtype=np.float64)
    for m, mat in enumerate(mats):
        model_rows *= mat[idx[:, m], :]
    model_at_nnz = model_rows @ weights
    return float(np.dot(np.asarray(tensor.values), model_at_nnz))


def cp_norm(factors: Sequence[np.ndarray], weights: Optional[np.ndarray] = None) -> float:
    """Frobenius norm ``||X̂||`` of a CP model from its Gram matrices."""
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    if not mats:
        raise ValueError("at least one factor is required")
    rank = mats[0].shape[1]
    if weights is None:
        weights = np.ones(rank, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    gram = np.ones((rank, rank), dtype=np.float64)
    for mat in mats:
        if mat.shape[1] != rank:
            raise ValueError("all factors must share one rank")
        gram *= mat.T @ mat
    value = float(weights @ gram @ weights)
    # Guard against tiny negative values from floating-point cancellation.
    return float(np.sqrt(max(value, 0.0)))


def cp_fit(
    tensor: SparseTensor,
    factors: Sequence[np.ndarray],
    weights: Optional[np.ndarray] = None,
) -> float:
    """CP decomposition fit ``1 - ||X - X̂|| / ||X||`` (1 is a perfect model)."""
    x_norm = tensor.norm()
    if x_norm == 0.0:
        raise ValueError("cannot compute the fit of an all-zero tensor")
    inner = cp_inner_product(tensor, factors, weights)
    model_norm = cp_norm(factors, weights)
    residual_sq = max(x_norm**2 - 2.0 * inner + model_norm**2, 0.0)
    return 1.0 - float(np.sqrt(residual_sq)) / x_norm
