"""Complete tensor-decomposition algorithms built on the sparse kernels.

* :mod:`repro.algorithms.cp` — CP-ALS (paper Algorithm 1) with two engines:
  the unified F-COO GPU engine (the paper's contribution, first CP on GPUs)
  and the SPLATT CPU engine used as the comparison point in Figure 10.
* :mod:`repro.algorithms.tucker` — Tucker decomposition via HOOI built on
  the unified SpTTMc kernel (the extension the paper sketches at the end of
  Section IV-D).
* :mod:`repro.algorithms.fit` — sparse-aware decomposition-quality metrics.
* :mod:`repro.algorithms.normalization` — factor column normalisation.
"""

from repro.algorithms.normalization import normalize_columns
from repro.algorithms.fit import cp_fit, cp_norm, cp_inner_product
from repro.algorithms.cp import (
    CPResult,
    cp_als,
    UnifiedGPUEngine,
    SplattCPUEngine,
)
from repro.algorithms.tucker import TuckerResult, tucker_hooi

__all__ = [
    "normalize_columns",
    "cp_fit",
    "cp_norm",
    "cp_inner_product",
    "CPResult",
    "cp_als",
    "UnifiedGPUEngine",
    "SplattCPUEngine",
    "TuckerResult",
    "tucker_hooi",
]
