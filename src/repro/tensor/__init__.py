"""Sparse/dense tensor algebra substrate.

This subpackage provides the mathematical foundation every other part of the
library builds on:

* :class:`~repro.tensor.sparse.SparseTensor` — the coordinate (COO) master
  representation of a sparse tensor.  All storage formats in
  :mod:`repro.formats` are derived from it and all kernels can be checked
  against it.
* dense matricization/folding helpers (:mod:`repro.tensor.dense`) following
  the Kolda–Bader unfolding convention used by the paper (Figure 1).
* matrix products used throughout tensor algebra
  (:mod:`repro.tensor.products`): Kronecker, Khatri–Rao and Hadamard.
* dense reference implementations of TTM, MTTKRP and TTMc
  (:mod:`repro.tensor.ops`) used as correctness oracles in the test suite.
"""

from repro.tensor.sparse import SparseTensor
from repro.tensor.dense import unfold_dense, fold_dense
from repro.tensor.products import khatri_rao, kronecker, hadamard
from repro.tensor.ops import (
    ttm_dense,
    mttkrp_dense,
    ttmc_dense,
    cp_reconstruct,
)
from repro.tensor.random import random_sparse_tensor

__all__ = [
    "SparseTensor",
    "unfold_dense",
    "fold_dense",
    "khatri_rao",
    "kronecker",
    "hadamard",
    "ttm_dense",
    "mttkrp_dense",
    "ttmc_dense",
    "cp_reconstruct",
    "random_sparse_tensor",
]
