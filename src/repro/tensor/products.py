"""Matrix products used in tensor algebra: Kronecker, Khatri–Rao, Hadamard.

The index conventions here must agree with :mod:`repro.tensor.dense` so that
identities such as ``M = X_(0) (C ⊙ B)`` (the paper's Equation 5, written
0-based) hold exactly; the test suite checks them on random inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["kronecker", "khatri_rao", "hadamard"]


def kronecker(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product of two matrices (paper Equation 1).

    ``kronecker(A, B)[i*K + k, j*L + l] == A[i, j] * B[k, l]`` for
    ``A ∈ R^{I×J}`` and ``B ∈ R^{K×L}``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"kronecker expects 2-D matrices, got shapes {a.shape} and {b.shape}"
        )
    return np.kron(a, b)


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker (Khatri–Rao) product (paper Equation 2).

    For ``A ∈ R^{I×R}`` and ``B ∈ R^{J×R}`` the result has shape ``(I*J, R)``
    with ``khatri_rao(A, B)[i*J + j, r] == A[i, r] * B[j, r]``.

    This row ordering matches the Kolda unfolding convention used by
    :func:`repro.tensor.dense.unfold_dense`: for a third-order tensor,
    ``X_(0) @ khatri_rao(C, B)`` computes the mode-0 MTTKRP where column
    ``z`` of ``X_(0)`` corresponds to ``(j, k)`` with ``z = k*J + j``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"khatri_rao expects 2-D matrices, got shapes {a.shape} and {b.shape}"
        )
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"khatri_rao operands must share the column count, got {a.shape} and {b.shape}"
        )
    i, r = a.shape
    j, _ = b.shape
    # Broadcasting: (I, 1, R) * (1, J, R) -> (I, J, R) -> (I*J, R), with the
    # J (second operand) index varying fastest, i.e. row = i*J + j.
    return (a[:, None, :] * b[None, :, :]).reshape(i * j, r)


def khatri_rao_multi(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Khatri–Rao product of a list of matrices, left-associated.

    ``khatri_rao_multi([A, B, C]) == khatri_rao(khatri_rao(A, B), C)``.
    Provided for the higher-order MTTKRP reference path.
    """
    if len(matrices) == 0:
        raise ValueError("khatri_rao_multi needs at least one matrix")
    out = np.asarray(matrices[0], dtype=np.float64)
    for m in matrices[1:]:
        out = khatri_rao(out, m)
    return out


def hadamard(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (Hadamard) product with shape checking."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"hadamard operands must share shape, got {a.shape} and {b.shape}")
    return a * b
