"""Dense reference implementations of the tensor operations in the paper.

These are the *oracles*: small, obviously-correct implementations working on
dense ndarrays, used by the test suite to validate every sparse kernel
(unified and baseline alike).  They are not meant to be fast and refuse to
run on tensors that would not fit in memory when densified.

Operations
----------
* :func:`ttm_dense` — Tensor-Times-Matrix on one mode (paper Equation 3).
* :func:`mttkrp_dense` — Matricized-Tensor-Times-Khatri-Rao-Product
  (paper Equations 5/6), for arbitrary order and arbitrary target mode.
* :func:`ttmc_dense` — TTM-chain as used by Tucker/HOOI (paper Equation 4).
* :func:`cp_reconstruct` — reconstruct a dense tensor from CP factors,
  used to measure decomposition fit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tensor.dense import fold_dense, unfold_dense
from repro.tensor.products import khatri_rao
from repro.util.validation import check_mode

__all__ = ["ttm_dense", "mttkrp_dense", "ttmc_dense", "cp_reconstruct"]


def ttm_dense(
    tensor: np.ndarray, matrix: np.ndarray, mode: int, *, transpose: bool = False
) -> np.ndarray:
    """Mode-``mode`` tensor-times-matrix product on dense data.

    Computes ``Y = X ×_mode U`` where, following the paper's Equation (3),
    ``Y(i_0, ..., :, ..., i_{N-1}) = Σ_t X(..., t, ...) U(t, :)``.  The
    ``mode`` dimension of ``X`` (size ``I_mode``) is therefore replaced by
    the column dimension of ``U``.

    Parameters
    ----------
    tensor:
        Dense input tensor.
    matrix:
        Dense factor ``U`` of shape ``(I_mode, R)`` (or ``(R, I_mode)`` with
        ``transpose=True``).
    mode:
        The product mode.
    transpose:
        If ``True`` multiply with ``U^T`` instead of ``U``.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    matrix = np.asarray(matrix, dtype=np.float64)
    mode = check_mode(mode, tensor.ndim)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    op = matrix.T if transpose else matrix
    if op.shape[0] != tensor.shape[mode]:
        raise ValueError(
            f"matrix rows ({op.shape[0]}) must equal tensor mode-{mode} size "
            f"({tensor.shape[mode]})"
        )
    unfolded = unfold_dense(tensor, mode)  # (I_mode, prod_others)
    result = op.T @ unfolded  # (R, prod_others)
    new_shape = list(tensor.shape)
    new_shape[mode] = op.shape[1]
    return fold_dense(result, mode, new_shape)


def mttkrp_dense(tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
    """Dense MTTKRP along ``mode``.

    ``factors`` is the full list of ``N`` factor matrices (one per mode, each
    of shape ``(I_m, R)``); the factor at ``mode`` is ignored, matching the
    convention of CP-ALS where it is the one being recomputed.

    Returns ``X_(mode) · (A_{N-1} ⊙ ... ⊙ A_{mode+1} ⊙ A_{mode-1} ⊙ ... ⊙ A_0)``
    of shape ``(I_mode, R)`` — the paper's Equation (5) generalised to any
    mode and order.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    mode = check_mode(mode, tensor.ndim)
    if len(factors) != tensor.ndim:
        raise ValueError(
            f"need one factor per mode ({tensor.ndim}), got {len(factors)}"
        )
    ranks = {np.asarray(f).shape[1] for m, f in enumerate(factors) if m != mode}
    if len(ranks) != 1:
        raise ValueError(f"all factors must share the same rank, got ranks {sorted(ranks)}")
    for m, f in enumerate(factors):
        f = np.asarray(f)
        if m != mode and f.shape[0] != tensor.shape[m]:
            raise ValueError(
                f"factor {m} has {f.shape[0]} rows but tensor mode {m} has size {tensor.shape[m]}"
            )
    other = [m for m in range(tensor.ndim) if m != mode]
    # Khatri-Rao chain ordered so that earlier modes vary fastest in the rows,
    # matching the unfolding convention (see repro.tensor.products).
    kr: Optional[np.ndarray] = None
    for m in reversed(other):
        f = np.asarray(factors[m], dtype=np.float64)
        kr = f if kr is None else khatri_rao(kr, f)
    assert kr is not None
    return unfold_dense(tensor, mode) @ kr


def ttmc_dense(tensor: np.ndarray, factors: Sequence[np.ndarray], mode: int) -> np.ndarray:
    """Dense TTM-chain (the paper's Equation 4), returned in unfolded form.

    Multiplies the tensor by every factor except the one at ``mode`` (each
    along its own mode) and returns the mode-``mode`` unfolding of the
    result, of shape ``(I_mode, prod_{m != mode} R_m)``.  This is the kernel
    at the heart of the HOOI / Tucker algorithm.
    """
    tensor = np.asarray(tensor, dtype=np.float64)
    mode = check_mode(mode, tensor.ndim)
    if len(factors) != tensor.ndim:
        raise ValueError(
            f"need one factor per mode ({tensor.ndim}), got {len(factors)}"
        )
    result = tensor
    for m in range(tensor.ndim):
        if m == mode:
            continue
        f = np.asarray(factors[m], dtype=np.float64)
        if f.shape[0] != tensor.shape[m]:
            raise ValueError(
                f"factor {m} has {f.shape[0]} rows but tensor mode {m} has size {tensor.shape[m]}"
            )
        result = ttm_dense(result, f, m)
    return unfold_dense(result, mode)


def cp_reconstruct(
    factors: Sequence[np.ndarray], weights: Optional[np.ndarray] = None
) -> np.ndarray:
    """Reconstruct the dense tensor represented by CP factors.

    ``X ≈ Σ_r weights[r] · a_r ∘ b_r ∘ c_r ∘ ...`` where ``∘`` is the outer
    product.  Used to compute decomposition fit in tests and examples.
    """
    factors = [np.asarray(f, dtype=np.float64) for f in factors]
    if not factors:
        raise ValueError("cp_reconstruct needs at least one factor")
    rank = factors[0].shape[1]
    for i, f in enumerate(factors):
        if f.ndim != 2 or f.shape[1] != rank:
            raise ValueError(f"factor {i} must have shape (I_{i}, {rank}), got {f.shape}")
    if weights is None:
        weights = np.ones(rank, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (rank,):
        raise ValueError(f"weights must have shape ({rank},), got {weights.shape}")

    shape = tuple(f.shape[0] for f in factors)
    out = np.zeros(shape, dtype=np.float64)
    for r in range(rank):
        component = weights[r]
        outer = factors[0][:, r]
        for f in factors[1:]:
            outer = np.multiply.outer(outer, f[:, r])
        out += component * outer
    return out
