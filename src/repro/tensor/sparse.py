"""Coordinate-format sparse tensors.

:class:`SparseTensor` is the master in-memory representation used throughout
the library.  It stores one row of mode indices per non-zero (``indices`` of
shape ``(nnz, order)``) plus a ``values`` vector, mirroring the classical COO
format the paper starts from (Section III-A).  Every specialised storage
format (F-COO, CSF, sCOO) in :mod:`repro.formats` is constructed from a
``SparseTensor`` and can be converted back for verification.

Design notes
------------
* Indices are always ``int64``; values default to ``float64`` but any real
  floating dtype is accepted.  Mixed conventions are a classic source of
  silent bugs in sparse codes, so the constructor canonicalises aggressively.
* All bulk operations are vectorised NumPy (no per-non-zero Python loops),
  following the HPC guide's "vectorise the hot loops" rule — several of the
  tensors used by the benchmarks have 10^5–10^6 non-zeros.
* The class is immutable in spirit: methods return new objects and never
  mutate ``self`` (the underlying arrays are, however, shared when safe, to
  avoid gratuitous copies).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sps

from repro.util.validation import check_mode, check_shape

__all__ = ["SparseTensor"]


class SparseTensor:
    """A sparse tensor stored in coordinate (COO) form.

    Parameters
    ----------
    indices:
        Integer array of shape ``(nnz, order)``; row ``z`` holds the mode
        indices of the ``z``-th non-zero.
    values:
        Array of shape ``(nnz,)`` with the non-zero values.
    shape:
        Tensor dimensions.  Must bound every index.
    sum_duplicates:
        When ``True`` (default) duplicate coordinates are merged by summing
        their values, which is the semantics FROSTT files and the paper's
        datasets assume.
    sort:
        When ``True`` (default) non-zeros are sorted lexicographically by
        mode index ``(mode 0, mode 1, ...)``.  Sorted order is what the COO
        kernels in the paper (and ParTI) assume.
    """

    __slots__ = ("_indices", "_values", "_shape", "_content_key")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
        *,
        sum_duplicates: bool = True,
        sort: bool = True,
    ) -> None:
        shape = check_shape(shape, min_order=1)
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values)
        if values.dtype.kind not in "fiu":
            raise TypeError(f"values must be numeric, got dtype {values.dtype}")
        values = values.astype(np.float64, copy=False) if values.dtype.kind in "iu" else values
        if indices.ndim != 2:
            if indices.size == 0:
                indices = indices.reshape(0, len(shape))
            else:
                raise ValueError(
                    f"indices must be a 2-D array of shape (nnz, order), got ndim={indices.ndim}"
                )
        if indices.shape[1] != len(shape):
            raise ValueError(
                f"indices has {indices.shape[1]} columns but shape has order {len(shape)}"
            )
        if values.ndim != 1 or values.shape[0] != indices.shape[0]:
            raise ValueError(
                f"values must be 1-D with one entry per non-zero: "
                f"got values shape {values.shape}, indices shape {indices.shape}"
            )
        if indices.shape[0]:
            mins = indices.min(axis=0)
            maxs = indices.max(axis=0)
            if (mins < 0).any():
                bad = int(np.argmax(mins < 0))
                raise ValueError(f"negative index found in mode {bad}")
            if (maxs >= np.asarray(shape)).any():
                bad = int(np.argmax(maxs >= np.asarray(shape)))
                raise ValueError(
                    f"index {int(maxs[bad])} out of bounds for mode {bad} of size {shape[bad]}"
                )

        if sum_duplicates and indices.shape[0]:
            indices, values = _sum_duplicates(indices, values, shape)
            # _sum_duplicates returns data already sorted lexicographically.
        elif sort and indices.shape[0]:
            order = np.lexsort(indices.T[::-1])
            indices = indices[order]
            values = values[order]

        self._indices = indices
        self._values = np.ascontiguousarray(values, dtype=np.float64)
        self._shape = shape
        self._content_key: Union[str, None] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array: np.ndarray, *, tol: float = 0.0) -> "SparseTensor":
        """Build a sparse tensor from a dense array, dropping entries with
        ``abs(value) <= tol``."""
        array = np.asarray(array, dtype=np.float64)
        mask = np.abs(array) > tol
        coords = np.argwhere(mask)
        values = array[mask]
        return cls(coords, values, array.shape, sum_duplicates=False, sort=True)

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "SparseTensor":
        """An all-zero tensor of the given shape."""
        shape = check_shape(shape)
        return cls(
            np.empty((0, len(shape)), dtype=np.int64),
            np.empty((0,), dtype=np.float64),
            shape,
            sum_duplicates=False,
            sort=False,
        )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def indices(self) -> np.ndarray:
        """``(nnz, order)`` int64 array of coordinates (read-only view)."""
        view = self._indices.view()
        view.setflags(write=False)
        return view

    @property
    def values(self) -> np.ndarray:
        """``(nnz,)`` float64 array of non-zero values (read-only view)."""
        view = self._values.view()
        view.setflags(write=False)
        return view

    @property
    def shape(self) -> Tuple[int, ...]:
        """Tensor dimensions."""
        return self._shape

    @property
    def order(self) -> int:
        """Number of modes (the tensor order / number of dimensions)."""
        return len(self._shape)

    # Alias familiar to NumPy users.
    ndim = order

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros."""
        return int(self._indices.shape[0])

    @property
    def size(self) -> int:
        """Total number of entries (dense size), ``prod(shape)``."""
        return int(np.prod(np.asarray(self._shape, dtype=np.float64)))

    @property
    def density(self) -> float:
        """Fraction of entries that are non-zero (``nnz / prod(shape)``)."""
        denom = float(np.prod(np.asarray(self._shape, dtype=np.float64)))
        return self.nnz / denom if denom else 0.0

    @property
    def content_key(self) -> str:
        """Short hex digest identifying the tensor's exact content.

        Hashes the shape, coordinates and values, so two tensors share a key
        exactly when they are numerically identical (after the constructor's
        canonicalisation).  This is the cache key the serving layer's
        :class:`~repro.serve.cache.PreprocCache` uses to recognise repeat
        submissions of the same tensor — two tenants uploading the same data
        hit the same cache entry regardless of how they name it.  Computed
        lazily and memoised, which relies on the class's immutability
        contract (see the module design notes): mutating a constructor
        argument in place after building the tensor is unsupported
        everywhere in the library — here it would leave a stale digest.
        """
        if self._content_key is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(np.asarray(self._shape, dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(self._indices).tobytes())
            digest.update(self._values.tobytes())
            self._content_key = digest.hexdigest()
        return self._content_key

    def mode_indices(self, mode: int) -> np.ndarray:
        """The index column of one mode, as a read-only ``(nnz,)`` view."""
        mode = check_mode(mode, self.order)
        view = self._indices[:, mode].view()
        view.setflags(write=False)
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor(shape={self._shape}, nnz={self.nnz}, "
            f"density={self.density:.3e})"
        )

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_dense(self) -> np.ndarray:
        """Materialise the tensor as a dense ndarray.

        Guarded against accidentally expanding huge tensors: refuses to
        allocate more than ~2 GiB.
        """
        if self.size > (1 << 28):
            raise MemoryError(
                f"refusing to densify a tensor with {self.size} entries "
                f"(shape {self._shape}); use the sparse kernels instead"
            )
        out = np.zeros(self._shape, dtype=np.float64)
        if self.nnz:
            out[tuple(self._indices.T)] = self._values
        return out

    def unfold(self, mode: int) -> sps.csr_matrix:
        """Mode-``mode`` matricization as a SciPy CSR matrix.

        Follows the Kolda–Bader convention also used by the paper's
        Figure 1: element ``(i_0, ..., i_{N-1})`` lands in row ``i_mode`` and
        column ``sum_{m != mode} i_m * prod_{l < m, l != mode} I_l`` (earlier
        modes vary fastest).
        """
        mode = check_mode(mode, self.order)
        rows = self._indices[:, mode]
        cols = self.unfolded_column_indices(mode)
        ncols = int(np.prod([s for m, s in enumerate(self._shape) if m != mode], dtype=np.float64))
        mat = sps.coo_matrix(
            (self._values, (rows, cols)), shape=(self._shape[mode], ncols)
        )
        return mat.tocsr()

    def unfolded_column_indices(self, mode: int) -> np.ndarray:
        """Column index of every non-zero in the mode-``mode`` unfolding.

        This is the ``z`` index of the paper's Equation (6); it is exactly
        the quantity that overflows 32-bit integers for large tensors, which
        is why F-COO never materialises it (Section III-A).
        """
        mode = check_mode(mode, self.order)
        other = [m for m in range(self.order) if m != mode]
        cols = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        for m in other:  # earlier modes vary fastest
            cols += self._indices[:, m] * stride
            stride *= self._shape[m]
        return cols

    # ------------------------------------------------------------------ #
    # Reordering / transformation
    # ------------------------------------------------------------------ #
    def sort_by_modes(self, mode_order: Sequence[int]) -> "SparseTensor":
        """Return a copy whose non-zeros are sorted lexicographically by the
        given mode priority (first mode in ``mode_order`` is the slowest
        varying / primary sort key).

        F-COO for an operation with index mode ``i`` requires the non-zeros
        sorted with the index modes as the primary keys so that fibers /
        slices occupy contiguous runs (paper Figure 2).
        """
        mode_order = [check_mode(m, self.order) for m in mode_order]
        if sorted(mode_order) != list(range(self.order)):
            raise ValueError(
                f"mode_order must be a permutation of 0..{self.order - 1}, got {mode_order}"
            )
        if self.nnz == 0:
            return self
        # np.lexsort sorts by the LAST key as primary, so reverse.
        keys = tuple(self._indices[:, m] for m in reversed(mode_order))
        perm = np.lexsort(keys)
        return SparseTensor(
            self._indices[perm],
            self._values[perm],
            self._shape,
            sum_duplicates=False,
            sort=False,
        )

    def permute_modes(self, perm: Sequence[int]) -> "SparseTensor":
        """Return the tensor with its modes reordered (a generalised transpose)."""
        perm = [check_mode(m, self.order) for m in perm]
        if sorted(perm) != list(range(self.order)):
            raise ValueError(f"perm must be a permutation of 0..{self.order - 1}, got {perm}")
        new_shape = tuple(self._shape[m] for m in perm)
        new_indices = self._indices[:, perm]
        return SparseTensor(new_indices, self._values, new_shape, sum_duplicates=False, sort=True)

    def astype(self, dtype: Union[str, np.dtype]) -> "SparseTensor":
        """Return a copy with values cast to ``dtype``."""
        return SparseTensor(
            self._indices,
            self._values.astype(dtype),
            self._shape,
            sum_duplicates=False,
            sort=False,
        )

    def scale(self, alpha: float) -> "SparseTensor":
        """Return ``alpha * self`` (same sparsity pattern)."""
        return SparseTensor(
            self._indices,
            self._values * float(alpha),
            self._shape,
            sum_duplicates=False,
            sort=False,
        )

    # ------------------------------------------------------------------ #
    # Structure queries (used by cost models and baselines)
    # ------------------------------------------------------------------ #
    def fiber_counts(self, mode: int) -> np.ndarray:
        """Number of non-zeros in each *non-empty* mode-``mode`` fiber.

        A mode-``mode`` fiber is obtained by fixing all indices except
        ``mode``; two non-zeros belong to the same fiber iff they agree on
        every other mode.  The returned vector has one entry per non-empty
        fiber.  ParTI's fiber-parallel SpTTM assigns one fiber per thread
        group, so the spread of this distribution is exactly the load
        imbalance the paper criticises (Section III-B / V-A).
        """
        mode = check_mode(mode, self.order)
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        other = [m for m in range(self.order) if m != mode]
        key = _composite_key(self._indices, other, self._shape)
        _, counts = np.unique(key, return_counts=True)
        return counts

    def num_fibers(self, mode: int) -> int:
        """Number of non-empty mode-``mode`` fibers."""
        return int(self.fiber_counts(mode).shape[0])

    def slice_counts(self, mode: int) -> np.ndarray:
        """Number of non-zeros in each non-empty slice obtained by fixing ``mode``."""
        mode = check_mode(mode, self.order)
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int64)
        _, counts = np.unique(self._indices[:, mode], return_counts=True)
        return counts

    def num_slices(self, mode: int) -> int:
        """Number of non-empty slices along ``mode`` (distinct indices in that mode)."""
        return int(self.slice_counts(mode).shape[0])

    def norm(self) -> float:
        """Frobenius norm of the tensor."""
        return float(np.linalg.norm(self._values))

    # ------------------------------------------------------------------ #
    # Comparison helpers (primarily for tests)
    # ------------------------------------------------------------------ #
    def allclose(self, other: "SparseTensor", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Numerically compare two sparse tensors (pattern + values).

        Both operands are canonicalised (duplicates summed, sorted) before
        comparison, and explicit zeros are ignored.
        """
        if not isinstance(other, SparseTensor):
            raise TypeError("allclose expects another SparseTensor")
        if self._shape != other._shape:
            return False
        a = _canonical(_drop_zeros(self))
        b = _canonical(_drop_zeros(other))
        if a.nnz != b.nnz:
            return False
        if a.nnz == 0:
            return True
        if not np.array_equal(a._indices, b._indices):
            return False
        return bool(np.allclose(a._values, b._values, rtol=rtol, atol=atol))

    def to_coords_dict(self) -> Dict[Tuple[int, ...], float]:
        """Return ``{coordinate tuple: value}`` — convenient in small tests."""
        return {
            tuple(int(i) for i in row): float(v)
            for row, v in zip(self._indices, self._values)
        }


# ---------------------------------------------------------------------- #
# Module-private helpers
# ---------------------------------------------------------------------- #
def _composite_key(indices: np.ndarray, modes: Iterable[int], shape: Sequence[int]) -> np.ndarray:
    """Collapse the given modes of each coordinate into a single int64 key.

    Used for fiber identification.  Overflow is avoided by falling back to a
    void-view based unique when the product of the selected mode sizes does
    not fit in int64.
    """
    modes = list(modes)
    sizes = [shape[m] for m in modes]
    total = 1.0
    for s in sizes:
        total *= float(s)
    if total < 2**62:
        key = np.zeros(indices.shape[0], dtype=np.int64)
        stride = 1
        for m in modes:
            key += indices[:, m] * stride
            stride *= shape[m]
        return key
    # Fall back to a structured view (rare: only for astronomically large shapes).
    sub = np.ascontiguousarray(indices[:, modes])
    return np.unique(sub.view([("", sub.dtype)] * sub.shape[1]), return_inverse=True)[1]


def _sum_duplicates(
    indices: np.ndarray, values: np.ndarray, shape: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge duplicate coordinates by summing their values.

    Returns arrays sorted lexicographically by coordinate.
    """
    order = np.lexsort(indices.T[::-1])
    indices = indices[order]
    values = values[order]
    if indices.shape[0] == 0:
        return indices, values
    diff = np.any(indices[1:] != indices[:-1], axis=1)
    group_start = np.concatenate(([True], diff))
    group_ids = np.cumsum(group_start) - 1
    n_groups = int(group_ids[-1]) + 1
    summed = np.zeros(n_groups, dtype=np.float64)
    np.add.at(summed, group_ids, values)
    return indices[group_start], summed


def _canonical(t: SparseTensor) -> SparseTensor:
    """Return ``t`` with its non-zeros in canonical lexicographic order."""
    if t.nnz == 0:
        return t
    idx = np.asarray(t.indices)
    order = np.lexsort(idx.T[::-1])
    if np.array_equal(order, np.arange(idx.shape[0])):
        return t
    return t.sort_by_modes(list(range(t.order)))


def _drop_zeros(t: SparseTensor) -> SparseTensor:
    """Return a copy of ``t`` without explicitly stored zeros."""
    mask = t.values != 0.0
    if mask.all():
        return t
    return SparseTensor(
        np.asarray(t.indices)[mask],
        np.asarray(t.values)[mask],
        t.shape,
        sum_duplicates=False,
        sort=False,
    )
