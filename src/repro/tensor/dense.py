"""Dense matricization (unfolding) and its inverse (folding).

The convention follows Kolda & Bader ("Tensor Decompositions and
Applications", SIAM Review 2009), which is also the convention of the
paper's Figure 1 and Equation (6): the mode-``n`` unfolding ``X_(n)`` places
element ``(i_0, ..., i_{N-1})`` in row ``i_n`` and column

``sum_{m != n} i_m * prod_{l < m, l != n} I_l``

i.e. earlier modes vary fastest along the columns.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import check_mode, check_shape

__all__ = ["unfold_dense", "fold_dense", "unfold_shape"]


def unfold_shape(shape: Sequence[int], mode: int) -> Tuple[int, int]:
    """Shape of the mode-``mode`` unfolding of a tensor with ``shape``."""
    shape = check_shape(shape)
    mode = check_mode(mode, len(shape))
    rows = shape[mode]
    cols = 1
    for m, s in enumerate(shape):
        if m != mode:
            cols *= s
    return rows, cols


def unfold_dense(array: np.ndarray, mode: int) -> np.ndarray:
    """Matricize a dense tensor along ``mode``.

    Equivalent to ``np.moveaxis(array, mode, 0).reshape(I_mode, -1, order="F")``
    — the Fortran-order reshape makes the *earlier* remaining modes vary
    fastest, matching :func:`unfold_shape` and
    :meth:`repro.tensor.SparseTensor.unfold`.
    """
    array = np.asarray(array)
    mode = check_mode(mode, array.ndim)
    moved = np.moveaxis(array, mode, 0)
    return moved.reshape(array.shape[mode], -1, order="F")


def fold_dense(matrix: np.ndarray, mode: int, shape: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`unfold_dense`.

    Parameters
    ----------
    matrix:
        The unfolded matrix of shape ``unfold_shape(shape, mode)``.
    mode:
        The mode that was unfolded.
    shape:
        The full tensor shape to restore.
    """
    shape = check_shape(shape)
    mode = check_mode(mode, len(shape))
    matrix = np.asarray(matrix)
    expected = unfold_shape(shape, mode)
    if matrix.shape != expected:
        raise ValueError(
            f"matrix shape {matrix.shape} does not match unfolding shape {expected} "
            f"for tensor shape {tuple(shape)} on mode {mode}"
        )
    other = [s for m, s in enumerate(shape) if m != mode]
    moved = matrix.reshape([shape[mode]] + other, order="F")
    return np.moveaxis(moved, 0, mode)
