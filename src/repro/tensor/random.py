"""Random sparse-tensor generation.

The low-level generator here draws coordinates from configurable per-mode
distributions; the dataset-specific analogs of the paper's FROSTT tensors
(brainq, nell1, nell2, delicious) are built on top of it in
:mod:`repro.data.synthetic`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.tensor.sparse import SparseTensor
from repro.util.rng import SeedLike, as_rng, spawn_rngs
from repro.util.validation import check_positive_int, check_shape

__all__ = ["random_sparse_tensor", "random_factors"]


def random_sparse_tensor(
    shape: Sequence[int],
    nnz: int,
    *,
    seed: SeedLike = None,
    distribution: str = "uniform",
    concentration: float = 1.0,
    value_low: float = 0.1,
    value_high: float = 1.0,
    ensure_no_empty_first_mode: bool = False,
) -> SparseTensor:
    """Generate a random sparse tensor with approximately ``nnz`` non-zeros.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    nnz:
        Number of coordinates drawn.  Duplicates are merged, so the resulting
        tensor can have slightly fewer stored non-zeros (significant only for
        very dense shapes — exactly the regime of the ``brainq`` analog).
    distribution:
        ``"uniform"`` draws every mode index uniformly.  ``"power"`` draws
        indices from a Zipf-like power-law so a few slices/fibers are heavy —
        this mimics the skewed real-world tensors (nell, delicious) where
        fiber-level parallelism suffers load imbalance.
    concentration:
        Exponent of the power-law (ignored for ``"uniform"``); larger means
        more skew.
    value_low, value_high:
        Non-zero values are drawn uniformly from this interval (kept away
        from zero so tests can rely on the pattern not collapsing).
    ensure_no_empty_first_mode:
        When set, every index of mode 0 appears at least once (the paper
        notes the output mode of MTTKRP is dense because a sparse tensor
        "can not have empty slices in the i-dimension").
    """
    shape = check_shape(shape)
    nnz = check_positive_int(nnz, "nnz")
    if distribution not in ("uniform", "power"):
        raise ValueError(f"unknown distribution {distribution!r}")
    rngs = spawn_rngs(seed, len(shape) + 1)
    value_rng = rngs[-1]

    columns = []
    for mode, (dim, rng) in enumerate(zip(shape, rngs[:-1])):
        if distribution == "uniform":
            idx = rng.integers(0, dim, size=nnz)
        else:
            idx = _power_law_indices(rng, dim, nnz, concentration)
        columns.append(idx.astype(np.int64))
    indices = np.stack(columns, axis=1)

    if ensure_no_empty_first_mode and shape[0] <= nnz:
        # Overwrite the first `shape[0]` draws' mode-0 index with a permutation
        # covering every slice.
        indices[: shape[0], 0] = np.arange(shape[0], dtype=np.int64)

    values = value_rng.uniform(value_low, value_high, size=nnz)
    return SparseTensor(indices, values, shape, sum_duplicates=True, sort=True)


def random_factors(
    shape: Sequence[int],
    rank: int,
    *,
    seed: SeedLike = None,
    scale: float = 1.0,
) -> Tuple[np.ndarray, ...]:
    """Generate one dense factor matrix per mode, each of shape ``(I_m, rank)``.

    Entries are uniform in ``[0, scale)`` — non-negative factors keep CP-ALS
    well behaved on the synthetic workloads.
    """
    shape = check_shape(shape)
    rank = check_positive_int(rank, "rank")
    rng = as_rng(seed)
    return tuple(rng.uniform(0.0, scale, size=(dim, rank)) for dim in shape)


def _power_law_indices(
    rng: np.random.Generator, dim: int, count: int, concentration: float
) -> np.ndarray:
    """Draw ``count`` indices in ``[0, dim)`` from a power-law distribution."""
    if concentration <= 0:
        raise ValueError(f"concentration must be positive, got {concentration}")
    ranks = np.arange(1, dim + 1, dtype=np.float64)
    weights = ranks ** (-concentration)
    weights /= weights.sum()
    # Permute so the heavy indices are not always the numerically smallest.
    perm = rng.permutation(dim)
    return perm[rng.choice(dim, size=count, p=weights)]
